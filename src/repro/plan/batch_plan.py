"""The per-round :class:`RoundPlan` and its builder.

Everything in a plan is a *function of the round's batches and the cluster
topology* — nothing depends on parameter values or cache state — so the
whole plan can be computed in the read stage, before any tier is touched:

* per node: the sorted unique working keys, their node-owner partition
  (who serves each key in the MEM tier), their per-GPU partition (where
  each key is staged in the HBM tier), and the sharded mini-batches;
* per (node, shard): the mini-batch's sorted unique keys, their gather
  positions inside the node's working set, and per-GPU key counts (what
  the HBM pull/push cost model charges);
* per sync round ``m``: the union of keys every node's workers touched —
  which is exactly the key set of the merged all-reduce update — with each
  node's resident/missing split against its staged working set.

A few plan fields are *not* known at build time and are filled in as
stages run (see :meth:`NodePlan.record_prepare`): the MEM cache hit/miss
split of the local partition, the resolved LRU slot rows of the pinned
working keys, and the cache's :class:`AdmissionRecord` (how the prepare
batch split into collision-free bulk runs under memory pressure).  The
write-back stage consumes the slots instead of re-probing the SlotIndex
for keys the prepare stage just located.  Conversely the plan *pre-splits*
the cache's admission work: plan key sets are sorted-unique by
construction, so every planned cache call runs with ``assume_unique=True``
and the admission planner skips its duplicate-boundary pass.

Plans are computed with exactly one ``np.unique`` per key set and one
stable argsort per partition level; every later consumer is a pure index
gather.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.batching import Batch
from repro.hbm.partition import ModuloPartitioner, bucket_order
from repro.utils.keys import KEY_DTYPE, compact_unique

__all__ = [
    "AdmissionRecord",
    "MinibatchPlan",
    "NodePlan",
    "NodePrefetchPlan",
    "NodeSyncPlan",
    "SyncPlan",
    "RoundPlan",
    "build_round_plan",
    "group_indices",
    "round_mem_unions",
]


@dataclass(frozen=True)
class AdmissionRecord:
    """How the MEM cache admitted one stage's key batch.

    Recorded by ``MemPS.prepare`` alongside the resolved slot rows: the
    number of collision-free bulk runs the admission plan applied, the
    single-key collision splits forced by the eviction frontier, and the
    whole-batch per-key replays (``n_scalar_fallbacks``) — which must be
    zero everywhere except under the ``REPRO_CACHE_ORACLE`` parity
    oracle.  The e2e ledger aggregates these per round.
    """

    n_runs: int
    n_collision_splits: int
    n_scalar_fallbacks: int

    @property
    def bulk_exact(self) -> bool:
        """True when no whole-batch per-key replay ran."""
        return self.n_scalar_fallbacks == 0


def group_indices(part_of: np.ndarray, n_parts: int) -> list[np.ndarray]:
    """Index arrays of each bucket, in ascending original position.

    Equivalent to ``[np.flatnonzero(part_of == b) for b in range(n_parts)]``
    (and to the order :meth:`ModuloPartitioner.split` produces) but with a
    single sort over the whole array, via the shared
    :func:`~repro.hbm.partition.bucket_order` primitive.
    """
    order, bounds = bucket_order(part_of, n_parts)
    return [order[bounds[b] : bounds[b + 1]] for b in range(n_parts)]


def _positions_in(sorted_keys: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Positions of ``queries`` in ``sorted_keys`` (every query present)."""
    return sorted_keys.searchsorted(queries)


#: Largest key domain the plan builder direct-addresses (mirrors the
#: store index's :data:`~repro.store.slot_index.DENSE_DOMAIN_CAP`).
_DENSE_POS_CAP = 1 << 22


def _key_lookup(sorted_keys: np.ndarray):
    """``(positions_fn, membership_fn)`` over a sorted-unique key set.

    For a compact key domain (max key below :data:`_DENSE_POS_CAP`) one
    scatter of each key's rank into a dense array turns every lookup into
    a single gather; otherwise both functions fall back to the
    ``searchsorted`` forms.  ``positions_fn`` requires member queries
    (the :func:`_positions_in` contract); ``membership_fn`` returns
    ``(mask, positions)`` with positions meaningful under the mask.
    """
    n = sorted_keys.size
    if n and int(sorted_keys[-1]) < _DENSE_POS_CAP:
        hi = int(sorted_keys[-1]) + 1
        # Uninitialized rank + boolean membership: the bool memset is 8x
        # cheaper than sentinel-filling the int64 rank array, and rank is
        # only ever read where the membership mask is True.
        rank = np.empty(hi, dtype=np.int64)
        member = np.zeros(hi, dtype=bool)
        ki = sorted_keys.astype(np.int64)
        rank[ki] = np.arange(n, dtype=np.int64)
        member[ki] = True

        def pos_fn(q: np.ndarray) -> np.ndarray:
            return rank[q.astype(np.int64)]

        def mem_fn(q: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            qi = q.astype(np.int64)
            ok = qi < hi
            qs = np.where(ok, qi, 0)
            mask = ok & member[qs]
            return mask, np.where(mask, rank[qs], 0)

        return pos_fn, mem_fn

    def pos_fn(q: np.ndarray) -> np.ndarray:
        return sorted_keys.searchsorted(q)

    def mem_fn(q: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return _membership(sorted_keys, q)

    return pos_fn, mem_fn


def _membership(
    sorted_keys: np.ndarray, queries: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """(mask, positions) of sorted ``queries`` against sorted ``sorted_keys``.

    ``positions`` is only meaningful where ``mask`` is True.
    """
    pos = sorted_keys.searchsorted(queries)
    ok = pos < sorted_keys.size
    mask = np.zeros(queries.size, dtype=bool)
    if sorted_keys.size:
        mask[ok] = sorted_keys[pos[ok]] == queries[ok]
    return mask, pos


@dataclass
class MinibatchPlan:
    """Key plan of one worker mini-batch (one (node, shard) pair)."""

    #: sorted unique keys of the shard (``Batch.unique_keys()``, precomputed)
    keys: np.ndarray
    #: positions of :attr:`keys` inside the node's sorted working set
    work_idx: np.ndarray
    #: positions of :attr:`keys` inside the node's sync-round key union
    #: (the gradient-buffer row of each key)
    sync_idx: np.ndarray
    #: number of keys owned by each GPU (drives the HBM pull/push charges)
    gpu_counts: np.ndarray
    #: size of the node's sync-round key union (gradient-buffer height)
    sync_size: int
    #: positions of the shard's *flat* (per-example) keys inside
    #: :attr:`keys` — the embedding layer's gather index, precomputed so
    #: the worker skips a per-minibatch ``searchsorted`` (None when the
    #: plan builder did not materialize it)
    emb_idx: np.ndarray | None = None


@dataclass
class NodeSyncPlan:
    """One node's view of sync round ``m``'s merged all-reduce update."""

    #: the node's own drained key union for this sync round (sorted)
    keys: np.ndarray
    #: positions in the *global* update key set that are staged on this
    #: node's HBM (membership in the node's working set)
    resident_idx: np.ndarray
    #: their positions inside the node's working set
    resident_work_idx: np.ndarray
    #: per-GPU counts of the resident keys (apply-update cost charges)
    resident_gpu_counts: np.ndarray
    #: positions in the global update key set absent from this node's HBM
    missing_idx: np.ndarray
    #: subset of :attr:`missing_idx` whose keys this node *owns* in the
    #: MEM tier (the owner-queue application path)
    missing_own_idx: np.ndarray


@dataclass
class SyncPlan:
    """Cluster-wide plan of one sync round (one mini-batch index ``m``)."""

    #: union over nodes of the keys their workers touched this round —
    #: exactly the key set of the merged all-reduce update, sorted
    keys: np.ndarray
    nodes: list[NodeSyncPlan]


@dataclass
class NodePlan:
    """One node's key plan for a round."""

    node_id: int
    #: sorted unique working keys of the node's batch (Alg. 1 line 3)
    keys: np.ndarray
    #: per-node index arrays into :attr:`keys` (MEM-tier owner partition);
    #: ``node_parts[node_id]`` is the local shard
    node_parts: list[np.ndarray]
    #: GPU owner of every working key (HBM-tier partition)
    gpu_of: np.ndarray
    #: per-GPU index arrays into :attr:`keys`
    gpu_parts: list[np.ndarray]
    #: the sharded mini-batches (``Batch.shard``, precomputed)
    shards: list[Batch]
    #: per-shard plans, aligned with :attr:`shards`
    minibatches: list[MinibatchPlan]
    # -- filled in as stages run ---------------------------------------
    #: LRU slab rows of the pinned local working keys (resolved once by
    #: ``MemPS.prepare``; the write-back updates/unpins through these
    #: instead of re-probing the SlotIndex)
    local_slots: np.ndarray | None = None
    #: cache hit mask of the local partition (recorded by the prepare
    #: stage's cache probe)
    local_hits: np.ndarray | None = None
    #: of the local cache misses, which ones the SSD resolved (the rest
    #: were fresh-initialized)
    ssd_found: np.ndarray | None = None
    #: how the cache admitted the prepare stage's local batch — bulk runs
    #: vs. collision splits vs. (oracle-only) scalar fallbacks
    admission: AdmissionRecord | None = None

    @property
    def local_idx(self) -> np.ndarray:
        """Index array of the locally-owned working keys."""
        return self.node_parts[self.node_id]

    @property
    def local_keys(self) -> np.ndarray:
        """The locally-owned working keys themselves (sorted).

        The write-back (``MemPS.absorb_updates``) updates exactly this
        partition in the node's MEM tier, which makes it the per-round
        MEM dirty set a delta snapshot ships — reusing the plan's
        ``node_parts`` split instead of re-partitioning.
        """
        return self.keys[self.node_parts[self.node_id]]

    def record_prepare(
        self,
        *,
        local_slots: np.ndarray,
        local_hits: np.ndarray,
        ssd_found: np.ndarray,
        admission: AdmissionRecord | None = None,
    ) -> None:
        """Attach the prepare stage's resolved state (slots + splits)."""
        self.local_slots = local_slots
        self.local_hits = local_hits
        self.ssd_found = ssd_found
        self.admission = admission


@dataclass
class NodePrefetchPlan:
    """One node's MEM-tier prefetch set for a round.

    :attr:`keys` is the sorted union of every key the node's MEM-PS will
    touch this round: its local working partition, the partitions it
    serves to each peer, and the owner-queue keys of every sync round
    (the ``missing_own_idx`` application path).  The prefetch stage
    resolves this set against the cache exactly once — cache probe, SSD
    load, fresh-init, pin — and records the LRU rows; every later MEM
    access this round is a pure row gather through the ``*_pos``
    segments below (each a :func:`numpy.searchsorted` into :attr:`keys`,
    precomputed at plan-build time).
    """

    #: sorted unique union of every key the node's MEM tier touches
    keys: np.ndarray
    #: positions in :attr:`keys` of the node's local working partition
    local_pos: np.ndarray
    #: per peer node ``p``, positions in :attr:`keys` of the partition
    #: served to ``p`` (the node's own entry is empty)
    serve_pos: list[np.ndarray]
    #: per sync round ``m``, positions in :attr:`keys` of the owner-queue
    #: keys (``SyncPlan.keys[missing_own_idx]``)
    update_pos: list[np.ndarray]
    # -- filled in by the prefetch stage -------------------------------
    #: LRU slab rows of the pinned prefetched keys (stable until the
    #: round's ``end_batch`` unpins them)
    rows: np.ndarray | None = None
    #: cache hit mask over :attr:`keys`
    hit: np.ndarray | None = None
    #: which of the misses the SSD resolved (the rest fresh-initialized)
    ssd_found: np.ndarray | None = None
    #: how the cache admitted the prefetch batch (bulk runs vs. splits)
    admission: AdmissionRecord | None = None
    #: per lookahead round ``b+1..b+k-1`` (depth ``k`` > 1), this node's
    #: MEM-touch union of that round — the same sorted set
    #: :func:`build_round_plan` would emit as :attr:`keys` when that
    #: round becomes current (see :func:`round_mem_unions`); the prefetch
    #: stage resolves these into its sliding window
    lookahead: list[np.ndarray] = field(default_factory=list)


@dataclass
class RoundPlan:
    """The complete per-round key plan, shared by every tier."""

    nodes: list[NodePlan]
    #: one :class:`SyncPlan` per mini-batch round
    sync: list[SyncPlan] = field(default_factory=list)
    #: one :class:`NodePrefetchPlan` per node when the cluster runs with
    #: the prefetch stage (None otherwise)
    prefetch: list[NodePrefetchPlan] | None = None
    #: per lookahead round, the future round's ``(global_keys, owner)``
    #: sync carry (depth k > 1 only; see :func:`round_mem_unions`)
    lookahead_sync: list[tuple[np.ndarray, np.ndarray]] = field(
        default_factory=list
    )

    @property
    def n_working_keys(self) -> int:
        return int(sum(n.keys.size for n in self.nodes))

    def dirty_keys_of(self, node_id: int) -> np.ndarray:
        """Keys node ``node_id``'s MEM tier wrote this round (sorted
        unique): its local working partition (the write-back) plus every
        sync round's owner-queue keys (the ``missing_own_idx``
        application path).  Snapshot deltas consume this instead of
        re-partitioning the round's key sets.
        """
        parts = [self.nodes[node_id].local_keys]
        for sp in self.sync:
            own = sp.nodes[node_id].missing_own_idx
            if own.size:
                parts.append(sp.keys[own])
        return np.unique(np.concatenate(parts))


def round_mem_unions(
    batches: list[Batch],
    *,
    node_partitioner: ModuloPartitioner,
    return_global: bool = False,
) -> (
    list[np.ndarray] | tuple[list[np.ndarray], np.ndarray, np.ndarray]
):
    """Per-node MEM-touch unions of one round, from its batches alone.

    Node ``i``'s prefetch union (:attr:`NodePrefetchPlan.keys`) is
    exactly the set of keys node ``i`` *owns* among every key any node's
    batch touches this round: its local partition, every partition it
    serves to a peer, and the owner-queue keys are all owner-``i``
    subsets of the round's global key union, and together they cover it.
    That identity lets the lookahead planner price a future round's
    prefetch set with one dedup + one partition — no node/sync plans —
    and the result is the identical sorted array ``build_round_plan``
    will emit when the round becomes current.

    With ``return_global=True`` also returns the round's global key
    union and its owner partition — at one sync round per mini-batch
    these are exactly the :class:`SyncPlan` key set and owner array the
    round will need when it becomes current, so a depth-k planner can
    carry them forward instead of re-deriving them.
    """
    n_nodes = len(batches)
    parts = [b.unique_keys() for b in batches]
    non_empty = [k for k in parts if k.size]
    all_keys = (
        compact_unique(np.concatenate(non_empty))
        if non_empty
        else np.empty(0, dtype=KEY_DTYPE)
    )
    owner = node_partitioner.part_of(all_keys)
    groups = group_indices(owner, n_nodes)
    unions = [all_keys[g] for g in groups]
    if return_global:
        return unions, all_keys, owner
    return unions


def build_round_plan(
    batches: list[Batch],
    *,
    node_partitioner: ModuloPartitioner,
    gpu_partitioner: ModuloPartitioner,
    n_gpus: int,
    mb_rounds: int,
    prefetch: bool = False,
    lookahead: list[list[Batch]] | None = None,
    prefetch_unions: list[np.ndarray] | None = None,
    sync_carry: tuple[np.ndarray, np.ndarray] | None = None,
) -> RoundPlan:
    """Compute the round's full key plan from its batches.

    ``batches[i]`` is node ``i``'s global batch; partitioners are the
    cluster's shared MEM-tier (node) and HBM-tier (GPU) policies.  With
    ``prefetch=True`` the plan also carries one
    :class:`NodePrefetchPlan` per node — the union of every key that
    node's MEM tier will touch, with gather segments for each consumer.

    ``lookahead`` (depth ``k`` > 1 only) is the batch list of each future
    round ``b+1..b+k-1``; their per-node unions are attached to
    :attr:`NodePrefetchPlan.lookahead` via :func:`round_mem_unions`.
    ``prefetch_unions`` optionally supplies this round's per-node unions
    precomputed by the *previous* round's lookahead, skipping the union
    rebuild (the arrays are bit-identical by the owner-partition
    identity, so the emitted plan does not depend on which path ran).
    ``sync_carry`` optionally supplies ``(global_keys, owner)`` — the
    round's global key union and owner partition from the same lookahead
    pass (:func:`round_mem_unions` with ``return_global=True``) — and is
    honoured only at one sync round per mini-batch, where the sync key
    set is exactly that union.
    """
    n_nodes = len(batches)
    node_plans: list[NodePlan] = []
    # Per (node, m): positions of the sync-round key union inside the
    # node's working set — reused to build the cross-node sync plans.
    m_union_work_idx: list[list[np.ndarray]] = []
    # Per-node (positions, membership) lookups over the working sets —
    # built once and reused by the shard split and the sync-plan pass.
    work_lookups: list[tuple] = []
    for i, batch in enumerate(batches):
        working = batch.unique_keys()
        work_pos, work_mem = _key_lookup(working)
        work_lookups.append((work_pos, work_mem))
        node_parts = group_indices(node_partitioner.part_of(working), n_nodes)
        gpu_of = gpu_partitioner.part_of(working)
        gpu_parts = group_indices(gpu_of, n_gpus)
        shards = batch.shard(n_gpus * mb_rounds)
        # Shard uniques by membership against the already-sorted working
        # set (one searchsorted + mask per shard) instead of a fresh
        # O(n log n) ``np.unique`` per shard; the result is identical by
        # construction (every shard key is a working key).
        shard_keys: list[np.ndarray] = []
        shard_work_idx: list[np.ndarray] = []
        shard_emb_idx: list[np.ndarray] = []
        member = np.zeros(working.size, dtype=bool)
        # Scratch rank map working-position -> shard-unique position; safe
        # to reuse across shards because each shard only reads positions
        # it just wrote (its flat keys are a subset of its unique keys).
        rank = np.empty(working.size, dtype=np.int64)
        for s in shards:
            pos = work_pos(s.keys)
            member[pos] = True
            widx = np.flatnonzero(member)
            member[widx] = False
            shard_work_idx.append(widx)
            k = working[widx]
            shard_keys.append(k)
            s._unique = k  # seed the batch memo: same set, same order
            rank[widx] = np.arange(widx.size, dtype=np.int64)
            shard_emb_idx.append(rank[pos])
        unions: list[np.ndarray] = []
        minibatches: list[MinibatchPlan] = []
        for m in range(mb_rounds):
            idx_group = shard_work_idx[m * n_gpus : (m + 1) * n_gpus]
            if mb_rounds == 1:
                # Single sync round: every working key appears in some
                # shard, so the union is the whole working set.
                union_idx = np.arange(working.size, dtype=np.int64)
            else:
                union_idx = (
                    np.unique(np.concatenate(idx_group))
                    if any(ix.size for ix in idx_group)
                    else np.empty(0, dtype=np.int64)
                )
            unions.append(union_idx)
            for g in range(n_gpus):
                widx = idx_group[g]
                minibatches.append(
                    MinibatchPlan(
                        keys=shard_keys[m * n_gpus + g],
                        work_idx=widx,
                        # Single sync round: union_idx is the identity,
                        # so each work index is its own sync position.
                        sync_idx=widx
                        if mb_rounds == 1
                        else _positions_in(union_idx, widx),
                        gpu_counts=np.bincount(
                            gpu_of[widx], minlength=n_gpus
                        ),
                        sync_size=int(union_idx.size),
                        emb_idx=shard_emb_idx[m * n_gpus + g],
                    )
                )
        m_union_work_idx.append(unions)
        node_plans.append(
            NodePlan(
                node_id=i,
                keys=working,
                node_parts=node_parts,
                gpu_of=gpu_of,
                gpu_parts=gpu_parts,
                shards=shards,
                minibatches=minibatches,
            )
        )

    sync_plans: list[SyncPlan] = []
    for m in range(mb_rounds):
        node_keys = [
            node_plans[i].keys[m_union_work_idx[i][m]] for i in range(n_nodes)
        ]
        if sync_carry is not None and mb_rounds == 1:
            # Carried from the previous round's lookahead: at one sync
            # round the global key set is the round's full key union —
            # bit-identical to the rebuild below.
            global_keys, owner_of_global = sync_carry
        else:
            non_empty = [k for k in node_keys if k.size]
            global_keys = (
                compact_unique(np.concatenate(non_empty))
                if non_empty
                else np.empty(0, dtype=KEY_DTYPE)
            )
            owner_of_global = node_partitioner.part_of(global_keys)
        per_node: list[NodeSyncPlan] = []
        for i, plan in enumerate(node_plans):
            resident, pos = work_lookups[i][1](global_keys)
            resident_idx = np.flatnonzero(resident)
            resident_work_idx = pos[resident]
            missing_idx = np.flatnonzero(~resident)
            per_node.append(
                NodeSyncPlan(
                    keys=node_keys[i],
                    resident_idx=resident_idx,
                    resident_work_idx=resident_work_idx,
                    resident_gpu_counts=np.bincount(
                        plan.gpu_of[resident_work_idx], minlength=n_gpus
                    ),
                    missing_idx=missing_idx,
                    missing_own_idx=missing_idx[
                        owner_of_global[missing_idx] == i
                    ],
                )
            )
        sync_plans.append(SyncPlan(keys=global_keys, nodes=per_node))

    prefetch_plans: list[NodePrefetchPlan] | None = None
    if prefetch:
        prefetch_plans = []
        base_pos = (
            _key_lookup(sync_plans[0].keys)[0]
            if mb_rounds == 1 and prefetch_unions is None
            else None
        )
        future_unions = []
        future_globals: list[tuple[np.ndarray, np.ndarray]] = []
        if lookahead:
            for b in lookahead:
                fu, fg, fo = round_mem_unions(
                    b, node_partitioner=node_partitioner, return_global=True
                )
                future_unions.append(fu)
                future_globals.append((fg, fo))
        for i, plan in enumerate(node_plans):
            # Every constituent is sorted unique by construction; the
            # union only needs the cross-part dedup.
            local_keys = plan.keys[plan.node_parts[i]]
            serve_keys = [
                node_plans[p].keys[node_plans[p].node_parts[i]]
                if p != i
                else np.empty(0, dtype=KEY_DTYPE)
                for p in range(n_nodes)
            ]
            update_keys = [
                sp.keys[sp.nodes[i].missing_own_idx] for sp in sync_plans
            ]
            if prefetch_unions is not None:
                # Carried over from the previous round's lookahead —
                # bit-identical to the rebuild below by the
                # owner-partition identity (see ``round_mem_unions``).
                union = prefetch_unions[i]
            else:
                parts = [
                    k for k in (local_keys, *serve_keys, *update_keys) if k.size
                ]
                if mb_rounds == 1 and parts:
                    # Single sync round: every part is a subset of that
                    # round's global key set (each node contributes its
                    # full working set, and the owner queue is drawn from
                    # the global set itself), so the union is a
                    # membership mask over it — no sort needed.
                    base = sync_plans[0].keys
                    member = np.zeros(base.size, dtype=bool)
                    for k in parts:
                        member[base_pos(k)] = True
                    union = base[np.flatnonzero(member)]
                elif parts:
                    union = compact_unique(np.concatenate(parts))
                else:
                    union = np.empty(0, dtype=KEY_DTYPE)
            union_pos = _key_lookup(union)[0]
            prefetch_plans.append(
                NodePrefetchPlan(
                    keys=union,
                    local_pos=union_pos(local_keys),
                    serve_pos=[union_pos(k) for k in serve_keys],
                    update_pos=[union_pos(k) for k in update_keys],
                    lookahead=[fu[i] for fu in future_unions],
                )
            )
    return RoundPlan(
        nodes=node_plans,
        sync=sync_plans,
        prefetch=prefetch_plans,
        lookahead_sync=future_globals if prefetch else [],
    )
