"""Per-round key planning (the BatchPlan subsystem).

A training round touches the same key metadata at every tier — the batch's
sorted unique working set, its node-owner partition, its per-GPU partition,
each mini-batch's key set, and the per-sync-round key unions the all-reduce
produces.  :func:`build_round_plan` computes all of it **once**, in the read
stage, and the resulting :class:`RoundPlan` is threaded through
:class:`~repro.core.cluster.RoundContext` so the MEM, HBM, and SSD tiers
consume precomputed index arrays instead of re-hashing, re-uniquing, and
re-probing per stage.
"""

from repro.plan.batch_plan import (
    AdmissionRecord,
    MinibatchPlan,
    NodePlan,
    NodePrefetchPlan,
    NodeSyncPlan,
    RoundPlan,
    SyncPlan,
    build_round_plan,
    group_indices,
)

__all__ = [
    "AdmissionRecord",
    "MinibatchPlan",
    "NodePlan",
    "NodePrefetchPlan",
    "NodeSyncPlan",
    "RoundPlan",
    "SyncPlan",
    "build_round_plan",
    "group_indices",
]
