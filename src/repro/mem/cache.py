"""In-memory parameter caches (paper Section 5, Appendix D).

The MEM-PS eviction policy combines LRU and LFU: every visited parameter
enters an **LRU** cache; LRU evictions fall into an **LFU** cache; LFU
evictions must be flushed to the SSD before their memory is released.
Working parameters of in-flight batches are **pinned** in the LRU and
cannot be evicted until their batch completes (pipeline integrity).

:class:`LRUCache` and :class:`LFUCache` are also usable standalone — the
cache-policy ablation benchmark compares them against the combined policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.keys import as_keys

__all__ = ["LRUCache", "LFUCache", "CombinedCache", "CacheStats"]


@dataclass
class CacheStats:
    """Hit/miss counters (drives the Fig. 4(c) reproduction)."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


class LRUCache:
    """Least-recently-used cache with pin support.

    Backed by Python's insertion-ordered dict: a touch re-inserts the key
    at the back; eviction pops from the front, skipping pinned keys.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._data: dict[int, np.ndarray] = {}
        self._pinned: set[int] = set()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: int) -> bool:
        return key in self._data

    def get(self, key: int) -> np.ndarray | None:
        """Value for ``key`` (refreshing its recency), or None."""
        val = self._data.pop(key, None)
        if val is None:
            return None
        self._data[key] = val
        return val

    def peek(self, key: int) -> np.ndarray | None:
        """Value without touching recency."""
        return self._data.get(key)

    def put(self, key: int, value: np.ndarray, *, pin: bool = False) -> list:
        """Insert/overwrite ``key``; returns evicted ``(key, value)`` pairs."""
        self._data.pop(key, None)
        self._data[key] = value
        if pin:
            self._pinned.add(key)
        return self.evict_overflow()

    def evict_overflow(self) -> list:
        """Evict unpinned keys (oldest first) until within capacity."""
        evicted = []
        if len(self._data) <= self.capacity:
            return evicted
        # Scan in recency order; pinned keys are skipped but retained.
        for key in list(self._data):
            if len(self._data) - len(evicted) <= self.capacity:
                break
            if key in self._pinned:
                continue
            evicted.append((key, self._data[key]))
        for key, _ in evicted:
            del self._data[key]
        if len(self._data) > self.capacity:
            raise RuntimeError(
                "cache over capacity with all residents pinned — the pinned "
                "working set must fit in memory (paper Section 5)"
            )
        return evicted

    def pin(self, key: int) -> None:
        if key not in self._data:
            raise KeyError(f"cannot pin absent key {key}")
        self._pinned.add(key)

    def unpin(self, key: int) -> None:
        self._pinned.discard(key)

    def pinned_count(self) -> int:
        return len(self._pinned)

    def keys(self) -> list[int]:
        return list(self._data)


class LFUCache:
    """Least-frequently-used cache (O(1) bucket implementation).

    Ties within a frequency bucket break least-recently-used first, the
    standard LFU-with-aging compromise.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._data: dict[int, np.ndarray] = {}
        self._freq: dict[int, int] = {}
        self._buckets: dict[int, dict[int, None]] = {}
        self._min_freq = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: int) -> bool:
        return key in self._data

    def _bump(self, key: int) -> None:
        f = self._freq[key]
        bucket = self._buckets[f]
        del bucket[key]
        if not bucket:
            del self._buckets[f]
            if self._min_freq == f:
                self._min_freq = f + 1
        self._freq[key] = f + 1
        self._buckets.setdefault(f + 1, {})[key] = None

    def get(self, key: int) -> np.ndarray | None:
        if key not in self._data:
            return None
        self._bump(key)
        return self._data[key]

    def frequency(self, key: int) -> int:
        return self._freq.get(key, 0)

    def put(self, key: int, value: np.ndarray, *, freq: int = 1) -> list:
        """Insert/overwrite; returns evicted ``(key, value)`` pairs.

        ``freq`` seeds the frequency of a *new* key — the combined cache
        passes the access count accumulated in the LRU tier, so demoted
        hot parameters are not treated as cold.
        """
        if freq < 1:
            raise ValueError("freq must be >= 1")
        if key in self._data:
            self._data[key] = value
            self._bump(key)
            return []
        evicted = []
        if len(self._data) >= self.capacity:
            bucket = self._buckets[self._min_freq]
            victim = next(iter(bucket))
            del bucket[victim]
            if not bucket:
                del self._buckets[self._min_freq]
            evicted.append((victim, self._data.pop(victim)))
            del self._freq[victim]
        self._data[key] = value
        self._freq[key] = freq
        self._buckets.setdefault(freq, {})[key] = None
        # Bucket count is tiny (distinct frequencies); recomputing the min
        # keeps the pointer exact across evictions and seeded inserts.
        self._min_freq = min(self._buckets)
        return evicted

    def pop(self, key: int) -> np.ndarray | None:
        """Remove ``key`` (promotion back into the LRU tier)."""
        if key not in self._data:
            return None
        f = self._freq.pop(key)
        bucket = self._buckets[f]
        del bucket[key]
        if not bucket:
            del self._buckets[f]
            if self._min_freq == f:
                self._min_freq = min(self._buckets) if self._buckets else 0
        return self._data.pop(key)

    def keys(self) -> list[int]:
        return list(self._data)


class CombinedCache:
    """The paper's two-tier LRU→LFU policy with pinning.

    * On access: LRU hit refreshes recency; LFU hit *promotes* the key back
      into the LRU tier (recent again); miss reports False.
    * On insert: key enters the LRU tier.  LRU overflow demotes to LFU;
      LFU overflow emits flush candidates (must be written to SSD).
    * Pinned keys live in the LRU tier and are never evicted until
      unpinned.
    """

    def __init__(
        self, capacity: int, *, lru_fraction: float = 0.5, value_dim: int = 1
    ) -> None:
        if capacity < 2:
            raise ValueError("combined cache needs capacity >= 2")
        if not 0.0 < lru_fraction < 1.0:
            raise ValueError("lru_fraction must be in (0, 1)")
        lru_cap = max(1, int(capacity * lru_fraction))
        lfu_cap = max(1, capacity - lru_cap)
        self.lru = LRUCache(lru_cap)
        self.lfu = LFUCache(lfu_cap)
        self.value_dim = value_dim
        self.stats = CacheStats()
        #: access counts of LRU-tier residents, carried into the LFU tier
        #: on demotion so hot parameters keep their standing.
        self._counts: dict[int, int] = {}
        #: flush-outs produced inside :meth:`get` promotions (a getter has
        #: no return channel for them); owners must drain via
        #: :meth:`take_pending_flush` and persist to the SSD-PS.
        self._pending_flush: list = []

    def __len__(self) -> int:
        return len(self.lru) + len(self.lfu)

    @property
    def capacity(self) -> int:
        return self.lru.capacity + self.lfu.capacity

    # ------------------------------------------------------------------
    def _demote(self, evicted_from_lru: list) -> list:
        """Push LRU evictions into the LFU; collect LFU flush-outs."""
        flushed = []
        for key, value in evicted_from_lru:
            flushed.extend(
                self.lfu.put(key, value, freq=self._counts.pop(key, 1))
            )
        for key, _ in flushed:
            self._counts.pop(key, None)
        return flushed

    def get(self, key: int) -> np.ndarray | None:
        """Single-key lookup (batch paths should use :meth:`get_batch`)."""
        val = self.lru.get(key)
        if val is not None:
            self.stats.hits += 1
            self._counts[key] = self._counts.get(key, 1) + 1
            return val
        freq = self.lfu.frequency(key)
        val = self.lfu.pop(key)
        if val is not None:
            # Promote back to the recent tier, demoting as needed.  The
            # demotion can flush LFU entries; park them for the owner to
            # persist — dropping them would lose trained parameters.
            self.stats.hits += 1
            self._counts[key] = freq + 1
            self._pending_flush.extend(self._demote(self.lru.put(key, val)))
            return val
        self.stats.misses += 1
        return None

    def put(self, key: int, value: np.ndarray, *, pin: bool = False) -> list:
        """Insert a value; returns ``(key, value)`` pairs to flush to SSD."""
        if key in self.lfu:
            freq = self.lfu.frequency(key)
            self.lfu.pop(key)
            self._counts[key] = freq + 1
        else:
            self._counts[key] = self._counts.get(key, 0) + 1
        evicted = self.lru.put(key, value, pin=pin)
        return self._demote(evicted)

    # ------------------------------------------------------------------
    def get_batch(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized façade over per-key lookups.

        Returns ``(values, hit_mask)``; missed rows are zero-filled.
        """
        keys = as_keys(keys)
        values = np.zeros((keys.size, self.value_dim), dtype=np.float32)
        hit = np.zeros(keys.size, dtype=bool)
        for i, k in enumerate(keys):
            v = self.get(int(k))
            if v is not None:
                values[i] = v
                hit[i] = True
        return values, hit

    def put_batch(
        self, keys: np.ndarray, values: np.ndarray, *, pin: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Insert many values; returns (flush_keys, flush_values)."""
        keys = as_keys(keys)
        values = np.asarray(values, dtype=np.float32)
        if values.shape != (keys.size, self.value_dim):
            raise ValueError("values shape mismatch")
        flushed = []
        for i, k in enumerate(keys):
            flushed.extend(self.put(int(k), values[i], pin=pin))
        if not flushed:
            return (
                as_keys([]),
                np.zeros((0, self.value_dim), dtype=np.float32),
            )
        fk = as_keys([k for k, _ in flushed])
        fv = np.stack([v for _, v in flushed]).astype(np.float32)
        return fk, fv

    def take_pending_flush(self) -> tuple[np.ndarray, np.ndarray]:
        """Drain flush-outs produced by :meth:`get` promotions."""
        if not self._pending_flush:
            return (
                as_keys([]),
                np.zeros((0, self.value_dim), dtype=np.float32),
            )
        fk = as_keys([k for k, _ in self._pending_flush])
        fv = np.stack([v for _, v in self._pending_flush]).astype(np.float32)
        self._pending_flush.clear()
        return fk, fv

    def unpin_batch(self, keys: np.ndarray) -> None:
        for k in as_keys(keys):
            self.lru.unpin(int(k))

    def update_if_present(self, key: int, value: np.ndarray) -> bool:
        """Overwrite a resident value without changing recency/frequency."""
        if key in self.lru:
            self.lru._data[key] = value
            return True
        if key in self.lfu:
            self.lfu._data[key] = value
            return True
        return False

    def contains(self, key: int) -> bool:
        return key in self.lru or key in self.lfu

    def flush_all(self) -> tuple[np.ndarray, np.ndarray]:
        """Drain everything (shutdown / checkpoint path)."""
        items = [(k, self.lru._data[k]) for k in self.lru.keys()]
        items += [(k, self.lfu._data[k]) for k in self.lfu.keys()]
        self.lru = LRUCache(self.lru.capacity)
        self.lfu = LFUCache(self.lfu.capacity)
        if not items:
            return as_keys([]), np.zeros((0, self.value_dim), dtype=np.float32)
        fk = as_keys([k for k, _ in items])
        fv = np.stack([v for _, v in items]).astype(np.float32)
        return fk, fv
