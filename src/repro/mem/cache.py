"""In-memory parameter caches (paper Section 5, Appendix D).

The MEM-PS eviction policy combines LRU and LFU: every visited parameter
enters an **LRU** cache; LRU evictions fall into an **LFU** cache; LFU
evictions must be flushed to the SSD before their memory is released.
Working parameters of in-flight batches are **pinned** in the LRU and
cannot be evicted until their batch completes (pipeline integrity).

Storage is batch-first (the :class:`~repro.store.ParameterStore`
protocol): values live in a preallocated ``(capacity, value_dim)``
float32 slab with parallel NumPy key/recency/frequency/pin arrays, keys
resolve to slab rows through a vectorized open-addressing
:class:`~repro.store.SlotIndex`, and eviction selects victims with
``argpartition`` over the recency/priority arrays.  Batched operations
are **sequential-equivalent**: ``get_batch``/``put_batch`` produce the
same eviction order, flush pairs, and statistics as the per-key loop the
seed implementation ran (``repro.store.reference`` keeps that
implementation as the parity oracle).

Admission is **bulk-exact**: the interleavings a single dense plan
cannot reproduce — a duplicate key re-entering the batch, a resident
batch key sitting inside the eviction frontier, an LFU-resident key
while the LRU overflows — no longer route the whole batch through the
per-key replay.  Instead the batch is partitioned into an *admission
plan*: a sequence of collision-free runs found with one vectorized
prefix scan per run (eviction-frontier ranks vs. cumulative overflow,
duplicate boundaries from one stable sort, LFU-residency × overflow),
each run applied with the existing dense slab ops and the eviction
frontier recomputed only at run boundaries.  Collision positions
themselves become single-key runs applied with the exact scalar op, so
the scalar work is O(runs), not O(keys).  The seed per-key replay
survives only as a debug/parity oracle: set the ``REPRO_CACHE_ORACLE=1``
environment variable (or a cache's ``force_scalar`` attribute) to route
every batch op through it; ``scalar_fallbacks`` counts those replays and
reads zero on the bulk engine.

:class:`LRUCache` and :class:`LFUCache` are also usable standalone — the
cache-policy ablation benchmark compares them against the combined policy.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.store.slot_index import SlotIndex
from repro.utils.keys import EMPTY_KEY, KEY_DTYPE, all_unique, as_keys, mix_hash

__all__ = ["LRUCache", "LFUCache", "CombinedCache", "CacheStats", "ORACLE_ENV"]

#: Order sentinel for free slots — sorts after every live tick/priority.
_FAR = np.int64(2**62)

#: Environment flag routing every batch op through the seed per-key
#: replay (the parity oracle the admission engine is measured against).
ORACLE_ENV = "REPRO_CACHE_ORACLE"


def _full_i64(n: int, value) -> np.ndarray:
    """``np.full(n, value, dtype=int64)`` without the broadcast wrapper.

    The admission hot paths allocate thousands of small sentinel-filled
    arrays per round; ``empty`` + C-level ``fill`` skips ``np.full``'s
    fill-value coercion and ``copyto`` broadcast machinery.
    """
    out = np.empty(n, dtype=np.int64)
    out.fill(value)
    return out


def _prev_occurrence(keys: np.ndarray) -> np.ndarray | None:
    """``prev[i]`` = index of the previous occurrence of ``keys[i]``, or -1.

    One stable argsort: equal keys stay in batch order, so each sorted
    neighbor pair of equal keys is a (previous, next) occurrence pair.
    The admission planner cuts a run wherever ``prev[i] >= run_start`` —
    a duplicate re-entering the current run.  Returns None when the keys
    are strictly increasing (sorted working sets, the planned hot path),
    so duplicate-free batches pay an O(n) scan, not an argsort.
    """
    if keys.size <= 1 or bool(np.all(keys[1:] > keys[:-1])):
        return None
    prev = _full_i64(keys.size, -1)
    order = np.argsort(keys, kind="stable")
    sk = keys[order]
    same = np.flatnonzero(sk[1:] == sk[:-1]) + 1
    prev[order[same]] = order[same - 1]
    return prev


def _run_cut(ok: np.ndarray) -> int:
    """Length of the leading True prefix of a monotone validity mask."""
    if ok.all():
        return int(ok.size)
    return int(np.argmax(~ok))


def _dup_bound(prev_dup: np.ndarray | None, start: int, n: int) -> int:
    """First position at/after ``start`` where a duplicate re-enters.

    A run can never cross it, so every per-run remainder slice stops
    here — duplicate-heavy batches cost one bounded probe per run
    instead of re-probing the whole tail (O(n·runs) → O(n) probes).
    """
    if prev_dup is None:
        return n
    cuts = np.flatnonzero(prev_dup[start:] >= start)
    return start + int(cuts[0]) if cuts.size else n

def _batch_hashes(keys: np.ndarray, *indices) -> np.ndarray | None:
    """Precompute ``mix_hash`` once per batch — or not at all.

    While every index involved is direct-addressed
    (:attr:`SlotIndex.hash_free`) the hashes would never be read, so the
    batch paths pass ``None``; an index that escapes to open addressing
    mid-operation computes the hash itself.
    """
    for ix in indices:
        if not ix.hash_free:
            return mix_hash(keys)
    return None


_PINNED_MSG = (
    "cache over capacity with all residents pinned — the pinned "
    "working set must fit in memory (paper Section 5)"
)


@dataclass
class CacheStats:
    """Hit/miss counters (drives the Fig. 4(c) reproduction) plus the
    admission engine's accounting: ``admission_runs`` bulk runs applied,
    ``collision_splits`` single-key runs forced by a collision with the
    eviction frontier, and ``scalar_fallbacks`` whole-batch per-key
    replays — zero on the bulk engine, nonzero only under the
    :data:`ORACLE_ENV` parity oracle."""

    hits: int = 0
    misses: int = 0
    admission_runs: int = 0
    collision_splits: int = 0
    scalar_fallbacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.admission_runs = 0
        self.collision_splits = 0
        self.scalar_fallbacks = 0


def _empty_pairs(dim: int) -> tuple[np.ndarray, np.ndarray]:
    return as_keys([]), np.zeros((0, dim), dtype=np.float32)


def _as_pairs(pairs: list, dim: int) -> tuple[np.ndarray, np.ndarray]:
    if not pairs:
        return _empty_pairs(dim)
    fk = as_keys([k for k, _ in pairs])
    fv = np.stack([v for _, v in pairs]).astype(np.float32)
    return fk, fv


class _SlabCache:
    """Shared slab plumbing for the LRU and LFU tiers.

    A fixed pool of ``capacity`` rows; ``_index`` maps keys to rows,
    ``_free`` is a stack of unused rows.  Subclasses add the replacement
    metadata (recency ticks / frequency+tick priorities).
    """

    def __init__(
        self,
        capacity: int,
        value_dim: int | None,
        key_domain: int | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.value_dim = value_dim
        self._index = SlotIndex(capacity, key_domain=key_domain)
        self._keys = np.full(capacity, EMPTY_KEY, dtype=KEY_DTYPE)
        self._values: np.ndarray | None = None
        if value_dim is not None:
            self._bind_dim(value_dim)
        self._free = np.arange(capacity - 1, -1, -1, dtype=np.int64)
        self._n_free = capacity
        self._now = 0
        #: None → follow the :data:`ORACLE_ENV` environment flag; True
        #: forces the seed per-key replay for every batch op (parity
        #: oracle); ``"legacy"`` emulates the pre-admission-plan policy
        #: (bulk only when one run covers the whole batch, else a
        #: whole-batch per-key replay — the pressure-regime baseline the
        #: e2e ledger measures the refactor against); False forces the
        #: bulk admission engine.
        self.force_scalar: bool | str | None = None
        #: standalone-tier admission accounting (the combined policy
        #: tracks the same three counters on its :class:`CacheStats`).
        self.admission_runs = 0
        self.collision_splits = 0
        self.scalar_fallbacks = 0

    def _admission_mode(self) -> str:
        """``"bulk"`` | ``"scalar"`` | ``"legacy"`` (see ``force_scalar``)."""
        mode = self.force_scalar
        if mode is None:
            env = os.environ.get(ORACLE_ENV, "")
            return "scalar" if env == "1" else ("legacy" if env == "legacy" else "bulk")
        if mode is True:
            return "scalar"
        if mode is False:
            return "bulk"
        return str(mode)

    def _bind_dim(self, dim: int) -> None:
        if dim <= 0:
            raise ValueError("value_dim must be positive")
        self.value_dim = dim
        self._values = np.zeros((self.capacity, dim), dtype=np.float32)

    def _coerce_value(self, value) -> np.ndarray:
        v = np.asarray(value, dtype=np.float32).reshape(-1)
        if self._values is None:
            self._bind_dim(v.size)
        elif v.size != self.value_dim:
            raise ValueError("value size mismatch")
        return v

    def _coerce_values(self, keys: np.ndarray, values) -> np.ndarray:
        v = np.asarray(values, dtype=np.float32)
        if v.ndim != 2 or v.shape[0] != keys.size:
            raise ValueError("values shape mismatch")
        if self._values is None:
            self._bind_dim(v.shape[1])
        elif v.shape[1] != self.value_dim:
            raise ValueError("values shape mismatch")
        return v

    def _alloc(self, n: int) -> np.ndarray:
        if n > self._n_free:
            raise RuntimeError("slab out of rows (eviction planning bug)")
        self._n_free -= n
        return self._free[self._n_free : self._n_free + n].copy()

    def _release(self, slots: np.ndarray) -> None:
        n = slots.size
        self._free[self._n_free : self._n_free + n] = slots
        self._n_free += n

    def _ticks(self, n: int) -> np.ndarray:
        out = np.arange(self._now + 1, self._now + 1 + n, dtype=np.int64)
        self._now += n
        return out

    @property
    def size(self) -> int:
        return self.capacity - self._n_free

    def __len__(self) -> int:
        return self.size

    def __contains__(self, key: int) -> bool:
        return self._index.get1(int(key)) >= 0

    def _dim_or_zero(self) -> int:
        return self.value_dim if self.value_dim is not None else 0

    def _items_in_order(self, order_key: np.ndarray):
        """Resident ``(slots, keys)`` sorted by ``order_key`` per slot."""
        occupied = np.flatnonzero(self._keys != EMPTY_KEY)
        occupied = occupied[np.argsort(order_key[occupied], kind="stable")]
        return occupied, self._keys[occupied]

    def contains(self, keys) -> np.ndarray | bool:
        if np.isscalar(keys) or isinstance(keys, (int, np.integer)):
            return int(keys) in self
        _, found = self._index.get(as_keys(keys))
        return found

    def transform(self, keys: np.ndarray, fn) -> None:
        """Apply ``new = fn(old)`` to resident ``keys`` (must all be
        resident, matching the HBM tier's contract)."""
        keys = as_keys(keys)
        if keys.size == 0:
            return
        slots, found = self._index.get(keys)
        if not np.all(found):
            missing = keys[~found][:5]
            raise KeyError(f"transform on absent keys, e.g. {missing.tolist()}")
        self._values[slots] = np.asarray(
            fn(self._values[slots]), dtype=np.float32
        )

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """All resident ``(keys, values)``, sorted by key."""
        occupied = np.flatnonzero(self._keys != EMPTY_KEY)
        keys = self._keys[occupied]
        order = np.argsort(keys)
        if self._values is None:
            return keys[order], np.zeros((keys.size, 0), dtype=np.float32)
        return keys[order], self._values[occupied[order]].copy()


class LRUCache(_SlabCache):
    """Least-recently-used cache with pin support.

    Recency is a monotone per-slot tick: a touch rewrites the slot's
    tick; eviction takes the smallest ticks among unpinned residents
    (``argpartition``), skipping pinned rows exactly as the seed dict
    scan did.
    """

    def __init__(
        self,
        capacity: int,
        *,
        value_dim: int | None = None,
        key_domain: int | None = None,
    ) -> None:
        super().__init__(capacity, value_dim, key_domain)
        self._tick = np.full(capacity, _FAR, dtype=np.int64)
        self._pinned = np.zeros(capacity, dtype=bool)

    # -- single-key API (exact seed semantics) --------------------------
    def get(self, key: int) -> np.ndarray | None:
        """Value for ``key`` (refreshing its recency), or None."""
        slot = self._index.get1(int(key))
        if slot < 0:
            return None
        self._now += 1
        self._tick[slot] = self._now
        return self._values[slot].copy()

    def peek(self, key: int) -> np.ndarray | None:
        """Value without touching recency."""
        slot = self._index.get1(int(key))
        if slot < 0:
            return None
        return self._values[slot].copy()

    def _eviction_order_key(self) -> np.ndarray:
        """Per-slot sort key: recency tick, pinned/free pushed to +inf."""
        return np.where(self._pinned, _FAR, self._tick)

    def _oldest_unpinned_slot(self) -> int:
        order = self._eviction_order_key()
        slot = int(np.argmin(order))
        return slot if order[slot] < _FAR else -1

    def _remove_slot(self, slot: int) -> None:
        self._index.remove1(int(self._keys[slot]))
        self._keys[slot] = EMPTY_KEY
        self._tick[slot] = _FAR
        self._pinned[slot] = False
        self._release(np.array([slot], dtype=np.int64))

    def _remove_slots(self, slots: np.ndarray) -> None:
        if slots.size == 0:
            return
        self._index.remove(self._keys[slots])
        self._keys[slots] = EMPTY_KEY
        self._tick[slots] = _FAR
        self._pinned[slots] = False
        self._release(slots)

    def _insert_slot(self, key: int, value: np.ndarray, pin: bool) -> int:
        slot = int(self._alloc(1)[0])
        self._keys[slot] = np.uint64(key)
        self._values[slot] = value
        self._now += 1
        self._tick[slot] = self._now
        self._pinned[slot] = pin
        self._index.set1(int(key), slot)
        return slot

    def put(self, key: int, value: np.ndarray, *, pin: bool = False) -> list:
        """Insert/overwrite ``key``; returns evicted ``(key, value)`` pairs."""
        key = int(key)
        v = self._coerce_value(value)
        slot = self._index.get1(key)
        if slot >= 0:
            self._values[slot] = v
            self._now += 1
            self._tick[slot] = self._now
            if pin:
                self._pinned[slot] = True
            return []
        evicted = []
        if self.size >= self.capacity:
            vslot = self._oldest_unpinned_slot()
            if vslot < 0:
                if pin:
                    raise RuntimeError(_PINNED_MSG)
                # Everything resident is pinned: the seed scan reached the
                # freshly inserted (unpinned) key and evicted it again.
                return [(key, v.copy())]
            evicted.append((int(self._keys[vslot]), self._values[vslot].copy()))
            self._remove_slot(vslot)
        self._insert_slot(key, v, pin)
        return evicted

    def evict_overflow(self) -> list:
        """Evict unpinned keys (oldest first) until within capacity."""
        overflow = self.size - self.capacity
        if overflow <= 0:
            return []
        slots = self._select_evictions(overflow)
        if slots.size < overflow:
            raise RuntimeError(_PINNED_MSG)
        evicted = [
            (int(self._keys[s]), self._values[s].copy()) for s in slots
        ]
        self._remove_slots(slots)
        return evicted

    def _select_evictions(
        self, n: int, order: np.ndarray | None = None
    ) -> np.ndarray:
        """Up to ``n`` unpinned resident slots, oldest tick first.

        ``order`` lets a caller that already materialized
        :meth:`_eviction_order_key` avoid a second O(capacity) scan.
        """
        if order is None:
            order = self._eviction_order_key()
        n = min(n, order.size)
        cand = np.argpartition(order, n - 1)[:n] if n < order.size else (
            np.arange(order.size)
        )
        cand = cand[order[cand] < _FAR]
        return cand[np.argsort(order[cand], kind="stable")]

    def pin(self, key: int) -> None:
        slot = self._index.get1(int(key))
        if slot < 0:
            raise KeyError(f"cannot pin absent key {key}")
        self._pinned[slot] = True

    def unpin(self, key: int) -> None:
        slot = self._index.get1(int(key))
        if slot >= 0:
            self._pinned[slot] = False

    def pin_batch(self, keys: np.ndarray) -> None:
        keys = as_keys(keys)
        slots, found = self._index.get(keys)
        if not np.all(found):
            raise KeyError(
                f"cannot pin absent key {int(keys[~found][0])}"
            )
        self._pinned[slots] = True

    def unpin_batch(self, keys: np.ndarray) -> None:
        slots, found = self._index.get(as_keys(keys))
        self._pinned[slots[found]] = False

    def pinned_count(self) -> int:
        return int(self._pinned.sum())

    def keys(self) -> list[int]:
        _, keys = self._items_in_order(self._tick)
        return keys.tolist()

    # -- batched API ----------------------------------------------------
    def get_batch(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Values + found mask; refreshes recency of every hit."""
        keys = as_keys(keys)
        values = np.zeros((keys.size, self._dim_or_zero()), dtype=np.float32)
        if keys.size == 0:
            return values, np.zeros(0, dtype=bool)
        slots, found = self._index.get(keys)
        hit_slots = slots[found]
        if hit_slots.size:
            values[found] = self._values[hit_slots]
            self._tick[hit_slots] = self._ticks(hit_slots.size)
        return values, found

    def put_batch(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        *,
        pin: bool = False,
        assume_unique: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Insert/overwrite many keys; returns evicted ``(keys, values)``.

        Sequential-equivalent to per-key :meth:`put` calls in batch
        order.  The batch is applied as an admission plan: collision-free
        runs go through the dense bulk path, positions colliding with the
        eviction frontier (or re-entering as duplicates) become
        single-key runs applied with the exact scalar :meth:`put`.
        ``assume_unique=True`` skips the duplicate-boundary pass for
        callers whose keys are unique by construction (the BatchPlan).
        """
        keys = as_keys(keys)
        vals = self._coerce_values(keys, values)
        if keys.size == 0:
            return _empty_pairs(self._dim_or_zero())
        mode = self._admission_mode()
        if mode == "scalar":
            self.scalar_fallbacks += 1
            pairs = []
            # Scalar-mode parity oracle replays the per-key reference
            # policy on purpose.  # repro: allow(hot-loop)
            for i in range(keys.size):
                pairs.extend(self.put(int(keys[i]), vals[i], pin=pin))
            return _as_pairs(pairs, self.value_dim)
        prev_dup = None if assume_unique else _prev_occurrence(keys)
        hashes = _batch_hashes(keys, self._index)
        ek_parts: list[np.ndarray] = []
        ev_parts: list[np.ndarray] = []
        s, n = 0, keys.size
        while s < n:
            bound = _dup_bound(prev_dup, s, n)
            rem = keys[s:bound]
            h = None if hashes is None else hashes[s:bound]
            rows, resident, hints = self._index.locate(rem, h)
            run, order = self._admission_run_length(
                inserts=~resident,
                res_slots=np.where(resident, rows, -1),
                blocked=None,
                allow_spill=True,
            )
            if mode == "legacy" and (run < n or bound < n):
                # Pre-refactor plan-or-replay: any cut → per-key replay.
                self.scalar_fallbacks += 1
                pairs = []
                for i in range(n):
                    pairs.extend(self.put(int(keys[i]), vals[i], pin=pin))
                return _as_pairs(pairs, self.value_dim)
            if run == 0:
                self.collision_splits += 1
                pairs = self.put(int(keys[s]), vals[s], pin=pin)
                if pairs:
                    pk, pv = _as_pairs(pairs, self.value_dim)
                    ek_parts.append(pk)
                    ev_parts.append(pv)
                s += 1
                continue
            e = s + run
            plan = self._plan_put(
                rem[:run],
                vals[s:e],
                pin,
                located=(rows[:run], resident[:run]),
                assume_unique=True,
                order=order,
            )
            assert plan is not None  # guaranteed by the run conditions
            ek, ev, _, _, _ = self._apply_put(
                plan, None if h is None else h[:run], hints[:run]
            )
            if ek.size:
                ek_parts.append(ek)
                ev_parts.append(ev)
            self.admission_runs += 1
            s = e
        if not ek_parts:
            return _empty_pairs(self.value_dim)
        return (
            np.concatenate(ek_parts).astype(KEY_DTYPE),
            np.concatenate(ev_parts, axis=0),
        )

    # -- bulk planning (shared with CombinedCache) ----------------------
    def _admission_run_length(
        self,
        *,
        inserts: np.ndarray,
        res_slots: np.ndarray,
        blocked: np.ndarray | None,
        allow_spill: bool,
    ) -> tuple[int, np.ndarray | None]:
        """Longest bulk-exact prefix of the remaining batch (may be 0).

        The remainder is already duplicate-bounded (:func:`_dup_bound`),
        and the remaining conditions are individually monotone over
        prefixes, so their conjunction's leading True prefix is the
        maximal exact run:

        * ``inserts`` marks positions allocating a fresh LRU row; their
          cumulative count beyond the free rows is the run's eviction
          demand ``E``.
        * ``res_slots`` carries the current slot of still-resident
          positions (-1 otherwise).  A resident slot whose rank in the
          eviction order falls below ``E`` would sequentially be evicted
          (or shift the victim set) before its own turn — a collision.
        * ``blocked`` positions are illegal in any run that evicts
          (LFU-resident keys of a combined put: their pop interleaves
          with the demotion stream).
        * without ``allow_spill``, ``E`` may not exceed the unpinned
          resident supply (the combined get's promotions never spill).

        Returns ``(run_length, eviction_order_key | None)`` — the order
        array is handed back so the run's apply step reuses it instead
        of rescanning the slab (None when the remainder evicts nothing).
        """
        free0 = np.int64(self.capacity - self.size)
        E = np.cumsum(inserts.astype(np.int64)) - free0
        np.maximum(E, 0, out=E)
        e_max = int(E[-1])
        if e_max == 0:
            # Eviction-free remainder: nothing can collide with a
            # frontier that never forms.
            return int(inserts.size), None
        # Only the ``e_max`` oldest unpinned residents can ever be
        # victims; rank just those (argpartition, not a full sort).
        order = self._eviction_order_key()
        frontier = self._select_evictions(e_max, order)
        rank = np.full(self.capacity, _FAR, dtype=np.int64)
        rank[frontier] = np.arange(frontier.size, dtype=np.int64)
        pos_rank = np.where(res_slots >= 0, rank[np.maximum(res_slots, 0)], _FAR)
        ok = np.minimum.accumulate(pos_rank) >= E
        if not allow_spill:
            ok &= E <= int((order < _FAR).sum())
        if blocked is not None:
            ok &= ~(np.logical_or.accumulate(blocked) & (E > 0))
        return _run_cut(ok), order

    def _plan_put(
        self,
        keys: np.ndarray,
        vals: np.ndarray,
        pin: bool,
        located=None,
        *,
        assume_unique: bool = False,
        order: np.ndarray | None = None,
    ):
        """Plan a sequential-equivalent bulk insert, or None → not exact.

        The plan is exact when keys are unique and no already-resident
        batch key sits inside the eviction range (sequentially it would
        be evicted with its *old* value before its own turn refreshed it).
        ``located`` short-circuits the index lookup when the caller
        already holds ``(slots, resident)``; the admission planner
        guarantees both conditions per run, so its calls never get None,
        and hands in the ``order`` array it already materialized.
        """
        if not assume_unique and not all_unique(keys):
            return None
        slots, resident = located if located is not None else self._index.get(keys)
        n_new = int((~resident).sum())
        overflow = max(0, self.size + n_new - self.capacity)
        old_sel = np.empty(0, dtype=np.int64)
        spill = np.empty(0, dtype=np.int64)
        if overflow:
            old_sel = self._select_evictions(overflow, order)
            if np.isin(old_sel, slots[resident]).any():
                return None
            if old_sel.size < overflow:
                # Unpinned-resident supply runs out mid-batch: the
                # earliest eligible batch positions are themselves
                # evicted, exactly as the seed scan reached them.
                if pin:
                    raise RuntimeError(_PINNED_MSG)
                eligible = np.flatnonzero(
                    ~(resident & self._pinned[np.where(resident, slots, 0)])
                )
                extra = overflow - old_sel.size
                if eligible.size < extra:
                    raise RuntimeError(_PINNED_MSG)
                spill = eligible[:extra]
        return keys, vals, pin, slots, resident, old_sel, spill

    def _apply_put(
        self,
        plan,
        hashes: np.ndarray | None = None,
        hints: np.ndarray | None = None,
    ):
        """Execute a bulk-put plan.

        Returns ``(evicted_keys, evicted_values, spill_positions,
        new_positions, new_rows)`` with evictions in sequential order:
        previously-resident victims by recency, then batch positions
        spilled from the insert stream.  ``new_positions``/``new_rows``
        report where freshly inserted batch keys landed, so the owner can
        write aligned per-slot metadata without another index lookup.
        """
        keys, vals, pin, slots, resident, old_sel, spill = plan
        n = keys.size
        ev_keys = [self._keys[old_sel], keys[spill]]
        ev_vals = [
            self._values[old_sel].copy()
            if old_sel.size
            else np.zeros((0, self.value_dim), dtype=np.float32),
            vals[spill],
        ]
        self._remove_slots(old_sel)
        ticks = self._ticks(n)
        # Refresh already-resident batch keys in place.
        res_slots = slots[resident]
        if res_slots.size:
            self._values[res_slots] = vals[resident]
            self._tick[res_slots] = ticks[resident]
            if pin:
                self._pinned[res_slots] = True
        # Drop spilled positions (resident ones leave, new ones never land).
        new_idx = np.flatnonzero(~resident)
        if spill.size:
            self._remove_slots(slots[spill][resident[spill]])
            new_idx = new_idx[~np.isin(new_idx, spill)]
        rows = self._alloc(new_idx.size)
        if new_idx.size:
            self._keys[rows] = keys[new_idx]
            self._values[rows] = vals[new_idx]
            self._tick[rows] = ticks[new_idx]
            self._pinned[rows] = pin
            sub_hashes = hashes[new_idx] if hashes is not None else None
            if hints is not None:
                self._index.install(keys[new_idx], rows, hints[new_idx], sub_hashes)
            else:
                self._index.insert_absent(keys[new_idx], rows, sub_hashes)
        return (
            np.concatenate(ev_keys).astype(KEY_DTYPE),
            np.concatenate(ev_vals, axis=0),
            spill,
            new_idx,
            rows,
        )


class LFUCache(_SlabCache):
    """Least-frequently-used cache over frequency/tick priority arrays.

    Eviction takes the minimum frequency, ties broken by the oldest
    *bucket-entry* tick (the moment the key last changed frequency) —
    exactly the seed bucket implementation's least-recently-added rule.
    """

    def __init__(
        self,
        capacity: int,
        *,
        value_dim: int | None = None,
        key_domain: int | None = None,
    ) -> None:
        super().__init__(capacity, value_dim, key_domain)
        self._freq = np.full(capacity, _FAR, dtype=np.int64)
        self._tick = np.full(capacity, _FAR, dtype=np.int64)

    # -- single-key API (exact seed semantics) --------------------------
    def get(self, key: int) -> np.ndarray | None:
        slot = self._index.get1(int(key))
        if slot < 0:
            return None
        self._bump_slot(slot)
        return self._values[slot].copy()

    def _bump_slot(self, slot: int) -> None:
        self._freq[slot] += 1
        self._now += 1
        self._tick[slot] = self._now

    def frequency(self, key: int) -> int:
        slot = self._index.get1(int(key))
        return int(self._freq[slot]) if slot >= 0 else 0

    def _victim_slot(self) -> int:
        fmin = int(self._freq.min())
        if fmin >= int(_FAR):
            return -1
        cand = np.flatnonzero(self._freq == fmin)
        return int(cand[np.argmin(self._tick[cand])])

    def _remove_slot(self, slot: int) -> None:
        self._index.remove1(int(self._keys[slot]))
        self._keys[slot] = EMPTY_KEY
        self._freq[slot] = _FAR
        self._tick[slot] = _FAR
        self._release(np.array([slot], dtype=np.int64))

    def _remove_slots(self, slots: np.ndarray) -> None:
        if slots.size == 0:
            return
        self._index.remove(self._keys[slots])
        self._keys[slots] = EMPTY_KEY
        self._freq[slots] = _FAR
        self._tick[slots] = _FAR
        self._release(slots)

    def put(self, key: int, value: np.ndarray, *, freq: int = 1) -> list:
        """Insert/overwrite; returns evicted ``(key, value)`` pairs.

        ``freq`` seeds the frequency of a *new* key — the combined cache
        passes the access count accumulated in the LRU tier, so demoted
        hot parameters are not treated as cold.
        """
        if freq < 1:
            raise ValueError("freq must be >= 1")
        key = int(key)
        v = self._coerce_value(value)
        slot = self._index.get1(key)
        if slot >= 0:
            self._values[slot] = v
            self._bump_slot(slot)
            return []
        evicted = []
        if self.size >= self.capacity:
            vslot = self._victim_slot()
            evicted.append((int(self._keys[vslot]), self._values[vslot].copy()))
            self._remove_slot(vslot)
        row = int(self._alloc(1)[0])
        self._keys[row] = np.uint64(key)
        self._values[row] = v
        self._freq[row] = freq
        self._now += 1
        self._tick[row] = self._now
        self._index.set1(key, row)
        return evicted

    def pop(self, key: int) -> np.ndarray | None:
        """Remove ``key`` (promotion back into the LRU tier)."""
        slot = self._index.get1(int(key))
        if slot < 0:
            return None
        out = self._values[slot].copy()
        self._remove_slot(slot)
        return out

    def keys(self) -> list[int]:
        _, keys = self._items_in_order(self._tick)
        return keys.tolist()

    # -- batched API ----------------------------------------------------
    def get_batch(
        self, keys: np.ndarray, *, assume_unique: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Values + found mask; bumps the frequency of every hit."""
        keys = as_keys(keys)
        values = np.zeros((keys.size, self._dim_or_zero()), dtype=np.float32)
        if keys.size == 0:
            return values, np.zeros(0, dtype=bool)
        prev_dup = None if assume_unique else _prev_occurrence(keys)
        has_dup = prev_dup is not None and bool((prev_dup >= 0).any())
        mode = self._admission_mode()
        if mode == "scalar" or (mode == "legacy" and has_dup):
            self.scalar_fallbacks += 1
            found = np.zeros(keys.size, dtype=bool)
            # Per-key replay of the reference policy (parity oracle).
            # repro: allow(hot-loop)
            for i in range(keys.size):
                v = self.get(int(keys[i]))
                if v is not None:
                    values[i] = v
                    found[i] = True
            return values, found
        found = np.zeros(keys.size, dtype=bool)
        s, n = 0, keys.size
        while s < n:
            # A run always holds ≥ 1 key: prev_dup[s] < s by definition.
            e = _dup_bound(prev_dup, s, n)
            slots, ok = self._index.get(keys[s:e])
            hit = slots[ok]
            if hit.size:
                values[s:e][ok] = self._values[hit]
                self._freq[hit] += 1
                self._tick[hit] = self._ticks(hit.size)
            found[s:e] = ok
            self.admission_runs += 1
            s = e
        return values, found

    def put_batch(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        *,
        freq: int = 1,
        assume_unique: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Insert many keys; returns evicted ``(keys, values)``.

        Admission-plan semantics: runs of fresh keys go through the exact
        bulk eviction plan (:meth:`bulk_insert`); runs containing
        resident overwrites are applied densely while they demand no
        eviction; a resident overwrite colliding with an eviction storm
        becomes a single-key scalar run.
        """
        keys = as_keys(keys)
        vals = self._coerce_values(keys, values)
        if keys.size == 0:
            return _empty_pairs(self._dim_or_zero())
        prev_dup = None if assume_unique else _prev_occurrence(keys)
        mode = self._admission_mode()
        if mode == "scalar" or (
            mode == "legacy"
            and (
                bool(self._index.get(keys)[1].any())
                or (prev_dup is not None and bool((prev_dup >= 0).any()))
            )
        ):
            # "legacy" replays whenever the pre-refactor policy would
            # have: any resident overwrite or duplicate in the batch.
            self.scalar_fallbacks += 1
            pairs = []
            # repro: allow(hot-loop)
            for i in range(keys.size):
                pairs.extend(self.put(int(keys[i]), vals[i], freq=freq))
            return _as_pairs(pairs, self.value_dim)
        ek_parts: list[np.ndarray] = []
        ev_parts: list[np.ndarray] = []
        s, n = 0, keys.size
        while s < n:
            bound = _dup_bound(prev_dup, s, n)
            rem = keys[s:bound]
            slots, resident = self._index.get(rem)
            free0 = np.int64(self.capacity - self.size)
            E = np.cumsum((~resident).astype(np.int64)) - free0
            np.maximum(E, 0, out=E)
            # Resident overwrites bump mid-run state a static eviction
            # pool cannot see.  Under eviction pressure, first try the
            # extended plan that models the bumps as arrivals; only when
            # its safety precondition fails is the run cut.
            colliding = np.logical_or.accumulate(resident) & (E > 0)
            if colliding.any():
                out = self._mixed_bulk_insert(
                    rem, vals[s:bound], freq, slots, resident, E
                )
                if out is not None:
                    fk, fv = out
                    if fk.size:
                        ek_parts.append(fk)
                        ev_parts.append(fv)
                    self.admission_runs += 1
                    s = bound
                    continue
            run = _run_cut(~colliding)
            if run == 0:
                self.collision_splits += 1
                pairs = self.put(int(keys[s]), vals[s], freq=freq)
                if pairs:
                    pk, pv = _as_pairs(pairs, self.value_dim)
                    ek_parts.append(pk)
                    ev_parts.append(pv)
                s += 1
                continue
            e = s + run
            sub_res = resident[:run]
            if sub_res.any():
                # Eviction-free mixed run: dense overwrite + bump of the
                # residents, fresh rows for the rest, ticks in batch order.
                rs = slots[:run][sub_res]
                sub_vals = vals[s:e]
                self._values[rs] = sub_vals[sub_res]
                self._freq[rs] += 1
                new = ~sub_res
                rows = self._alloc(int(new.sum()))
                ticks = self._ticks(run)
                self._tick[rs] = ticks[sub_res]
                if rows.size:
                    new_keys = rem[:run][new]
                    self._keys[rows] = new_keys
                    self._values[rows] = sub_vals[new]
                    self._freq[rows] = freq
                    self._tick[rows] = ticks[new]
                    self._index.insert_absent(new_keys, rows)
            else:
                freqs = _full_i64(run, freq)
                fk, fv = self.bulk_insert(rem[:run], vals[s:e], freqs)
                if fk.size:
                    ek_parts.append(fk)
                    ev_parts.append(fv)
            self.admission_runs += 1
            s = e
        if not ek_parts:
            return _empty_pairs(self.value_dim)
        return (
            np.concatenate(ek_parts).astype(KEY_DTYPE),
            np.concatenate(ev_parts, axis=0),
        )

    def bulk_insert(
        self, keys: np.ndarray, vals: np.ndarray, freqs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sequential-equivalent batch of seeded inserts of *new* keys.

        ``keys`` must be unique and disjoint from current residents (the
        demotion stream of the combined policy is both by construction).
        Returns flushed ``(keys, values)`` in eviction order.
        """
        m = keys.size
        if m == 0:
            return _empty_pairs(self._dim_or_zero())
        free0 = self.capacity - self.size
        n_evict = max(0, m - free0)
        if n_evict == 0:
            rows = self._alloc(m)
            self._keys[rows] = keys
            self._values[rows] = vals
            self._freq[rows] = freqs
            self._tick[rows] = self._ticks(m)
            self._index.insert_absent(keys, rows)
            return _empty_pairs(self.value_dim)
        # Arrival j (0-based) becomes an eviction candidate once its
        # insert has happened: eviction slot t (0-based) precedes insert
        # free0 + t, so arrival j needs slot t >= j - free0 + 1.
        d_release = np.maximum(0, np.arange(m, dtype=np.int64) - free0 + 1)
        pool = self._pool_candidates(n_evict)
        pool_slot, d_slot = _greedy_evictions(
            self._freq[pool], self._tick[pool], freqs, d_release, n_evict
        )
        # Flush list in eviction (slot) order.
        taken_pool = pool_slot >= 0
        taken_d = d_slot >= 0
        fkeys = np.concatenate([self._keys[pool[taken_pool]], keys[taken_d]])
        fvals = np.concatenate(
            [self._values[pool[taken_pool]].copy(), vals[taken_d]], axis=0
        )
        order = np.argsort(
            np.concatenate([pool_slot[taken_pool], d_slot[taken_d]]),
            kind="stable",
        )
        self._remove_slots(pool[taken_pool])
        ticks = self._ticks(m)
        keep = ~taken_d
        rows = self._alloc(int(keep.sum()))
        self._keys[rows] = keys[keep]
        self._values[rows] = vals[keep]
        self._freq[rows] = freqs[keep]
        self._tick[rows] = ticks[keep]
        self._index.insert_absent(keys[keep], rows)
        return fkeys[order].astype(KEY_DTYPE), fvals[order]

    def _mixed_bulk_insert(
        self,
        keys: np.ndarray,
        vals: np.ndarray,
        freq: int,
        slots: np.ndarray,
        resident: np.ndarray,
        E: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Exact plan for a mixed run *with* evictions, or None.

        Resident overwrites bump (freq, tick) mid-run — state the static
        pool of :func:`_greedy_evictions` cannot see.  Each resident is
        modeled exactly by moving it out of the pool and into the
        arrivals channel at its post-bump priority (freq+1, batch-order
        tick), released at the first eviction after its own bump —
        provided no resident can be evicted *before* its bump.  That
        pre-bump safety holds whenever at least ``E[j]`` strictly-cheaper
        non-run residents exist (each of the first ``E[j]`` evictions
        then still has a cheaper victim available: ``t`` evictions can
        have consumed at most ``t < E[j]`` of them, and cheaper arrivals
        only add victims).  The check is conservative; when it fails the
        caller cuts the run, which is always exact.

        A resident evicted after its bump flushes the batch's *new*
        value — the overwrite happened first in sequential order.
        """
        m = keys.size
        res_slots = slots[resident]
        n_res = int(res_slots.size)
        arrivals = ~resident
        free0 = self.capacity - self.size
        n_evict = max(0, (m - n_res) - free0)
        # Candidate pool, cheapest first, wide enough that the run's
        # residents can be excluded with n_evict candidates remaining.
        cand = self._pool_candidates(n_evict + n_res)
        in_run = np.isin(cand, res_slots, assume_unique=True)
        # Strictly-cheaper non-run candidates at each priority rank
        # (exclusive prefix count of non-run entries).
        nonrun = (~in_run).astype(np.int64)
        cheaper_at = np.cumsum(nonrun) - nonrun
        by_slot = np.argsort(cand)
        pos = cand[by_slot].searchsorted(res_slots)
        # A run resident beyond the truncated pool window is costlier
        # than all of it, hence than >= n_evict non-run slots: safe.
        cheaper = _full_i64(n_res, n_evict)
        idx = np.minimum(pos, cand.size - 1)
        found = cand[by_slot][idx] == res_slots
        cheaper[found] = cheaper_at[by_slot[idx[found]]]
        if (cheaper < E[resident]).any():
            return None
        pool = cand[~in_run][:n_evict]
        # Per-position arrival channel: fresh inserts at the seed
        # frequency, bumped residents at freq+1.  Both become eviction
        # candidates at the first eviction after their own operation —
        # with A the inclusive arrival count, max(0, A - free0) in both
        # cases (an arrival's own insert is number A-1, a resident's
        # bump precedes insert A).
        d_freq = _full_i64(m, freq)
        d_freq[resident] = self._freq[res_slots] + 1
        A = np.cumsum(arrivals.astype(np.int64))
        d_release = np.maximum(0, A - free0)
        pool_slot, d_slot = _greedy_evictions(
            self._freq[pool], self._tick[pool], d_freq, d_release, n_evict
        )
        taken_pool = pool_slot >= 0
        taken_d = d_slot >= 0
        fkeys = np.concatenate([self._keys[pool[taken_pool]], keys[taken_d]])
        fvals = np.concatenate(
            [self._values[pool[taken_pool]].copy(), vals[taken_d]], axis=0
        )
        order = np.argsort(
            np.concatenate([pool_slot[taken_pool], d_slot[taken_d]]),
            kind="stable",
        )
        self._remove_slots(pool[taken_pool])
        ticks = self._ticks(m)
        surviving = resident & ~taken_d
        rs = slots[surviving]
        self._values[rs] = vals[surviving]
        self._freq[rs] += 1
        self._tick[rs] = ticks[surviving]
        self._remove_slots(slots[resident & taken_d])
        keep = arrivals & ~taken_d
        rows = self._alloc(int(keep.sum()))
        if rows.size:
            self._keys[rows] = keys[keep]
            self._values[rows] = vals[keep]
            self._freq[rows] = freq
            self._tick[rows] = ticks[keep]
            self._index.insert_absent(keys[keep], rows)
        return fkeys[order].astype(KEY_DTYPE), fvals[order]

    def _pool_candidates(self, n_evict: int) -> np.ndarray:
        """Resident slots that could be evicted: the ``n_evict`` smallest
        by (freq, tick), returned in that priority order."""
        order_f = self._freq  # _FAR on free slots keeps them out
        if n_evict < self.size:
            kth = np.partition(order_f, n_evict - 1)[n_evict - 1]
            cand = np.flatnonzero(order_f <= kth)
        else:
            cand = np.flatnonzero(order_f < _FAR)
        order = np.lexsort((self._tick[cand], self._freq[cand]))
        return cand[order][:n_evict]


def _greedy_evictions(
    pool_freq: np.ndarray,
    pool_tick: np.ndarray,
    d_freq: np.ndarray,
    d_release: np.ndarray,
    n_slots: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact offline solution of the LFU insert/evict stream.

    The sequential process performs ``n_slots`` evictions; eviction ``t``
    removes the minimum-(freq, tick) item among the initial pool plus the
    arrivals inserted so far.  That pop-min process is equivalent to the
    greedy matching: walk all candidates in ascending (freq, tick)
    priority and give each the earliest free eviction slot at or after
    its release (pool items release at 0, arrival ``j`` at
    ``d_release[j]``); candidates left without a slot survive.

    Processing one frequency class at a time keeps everything vectorized:
    within a class both groups are already priority- and release-ordered
    (pool ticks all precede arrival ticks; arrivals arrive in tick
    order), so the earliest-free-slot recurrence collapses to a running
    maximum over positions found with ``searchsorted``.

    Returns per-candidate eviction slots (-1 = survives).
    """
    pool_slot = _full_i64(pool_freq.size, -1)
    d_slot = _full_i64(d_freq.size, -1)
    avail = np.arange(n_slots, dtype=np.int64)
    d_eligible = d_release < n_slots
    for f in np.unique(np.concatenate([pool_freq, d_freq[d_eligible]])):
        if avail.size == 0:
            break
        p_idx = np.flatnonzero(pool_freq == f)
        d_idx = np.flatnonzero((d_freq == f) & d_eligible)
        rel = np.concatenate(
            [np.zeros(p_idx.size, dtype=np.int64), d_release[d_idx]]
        )
        if rel.size == 0:
            continue
        pos = avail.searchsorted(rel, side="left")
        seq = np.arange(rel.size, dtype=np.int64)
        assigned = np.maximum.accumulate(pos - seq) + seq
        ok = assigned < avail.size
        pool_slot[p_idx[ok[: p_idx.size]]] = avail[
            assigned[: p_idx.size][ok[: p_idx.size]]
        ]
        d_slot[d_idx[ok[p_idx.size :]]] = avail[
            assigned[p_idx.size :][ok[p_idx.size :]]
        ]
        keep = np.ones(avail.size, dtype=bool)
        keep[assigned[ok]] = False
        avail = avail[keep]
    return pool_slot, d_slot


class CombinedCache:
    """The paper's two-tier LRU→LFU policy with pinning.

    * On access: LRU hit refreshes recency; LFU hit *promotes* the key back
      into the LRU tier (recent again); miss reports False.
    * On insert: key enters the LRU tier.  LRU overflow demotes to LFU;
      LFU overflow emits flush candidates (must be written to SSD).
    * Pinned keys live in the LRU tier and are never evicted until
      unpinned.

    Access counts of LRU residents ride in a per-slot array aligned with
    the LRU slab and seed the LFU frequency on demotion, so demoted hot
    parameters keep their standing.
    """

    def __init__(
        self,
        capacity: int,
        *,
        lru_fraction: float = 0.5,
        value_dim: int = 1,
        key_domain: int | None = None,
    ) -> None:
        self.key_domain = key_domain
        if capacity < 2:
            raise ValueError("combined cache needs capacity >= 2")
        if not 0.0 < lru_fraction < 1.0:
            raise ValueError("lru_fraction must be in (0, 1)")
        lru_cap = max(1, int(capacity * lru_fraction))
        lfu_cap = max(1, capacity - lru_cap)
        self.lru = LRUCache(lru_cap, value_dim=value_dim, key_domain=key_domain)
        self.lfu = LFUCache(lfu_cap, value_dim=value_dim, key_domain=key_domain)
        self.value_dim = value_dim
        self.stats = CacheStats()
        #: access counts of LRU-tier residents, aligned with LRU slots.
        self._counts = np.zeros(lru_cap, dtype=np.int64)
        #: flush-outs produced inside :meth:`get` promotions (a getter has
        #: no return channel for them); owners must drain via
        #: :meth:`take_pending_flush` and persist to the SSD-PS.
        self._pending_flush: list = []

    def __len__(self) -> int:
        return len(self.lru) + len(self.lfu)

    @property
    def capacity(self) -> int:
        return self.lru.capacity + self.lfu.capacity

    # ------------------------------------------------------------------
    def _demote_evicted(
        self, ekeys: np.ndarray, evals: np.ndarray, eslots: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Push LRU evictions into the LFU; returns LFU flush-outs.

        ``eslots`` carries each eviction's former LRU slot so its access
        count can seed the LFU frequency; -1 means the key never occupied
        a row this batch (evicted straight from the insert stream) and
        seeds with its fresh count of 1.
        """
        freqs = np.where(eslots >= 0, self._counts[eslots], 1)
        return self.lfu.bulk_insert(ekeys, evals, freqs)

    def get(self, key: int) -> np.ndarray | None:
        """Single-key lookup (batch paths should use :meth:`get_batch`)."""
        key = int(key)
        slot = self.lru._index.get1(key)
        if slot >= 0:
            self.stats.hits += 1
            self._counts[slot] += 1
            self.lru._now += 1
            self.lru._tick[slot] = self.lru._now
            return self.lru._values[slot].copy()
        freq = self.lfu.frequency(key)
        val = self.lfu.pop(key)
        if val is not None:
            # Promote back to the recent tier, demoting as needed.  The
            # demotion can flush LFU entries; park them for the owner to
            # persist — dropping them would lose trained parameters.
            self.stats.hits += 1
            self._pending_flush.extend(self._put_single(key, val, freq + 1, False))
            return val
        self.stats.misses += 1
        return None

    def _put_single(
        self, key: int, value: np.ndarray, count: int, pin: bool
    ) -> list:
        """Seed-exact single insert into the LRU with demotion cascade."""
        lru = self.lru
        v = lru._coerce_value(value)
        slot = lru._index.get1(key)
        if slot >= 0:
            lru._values[slot] = v
            lru._now += 1
            lru._tick[slot] = lru._now
            if pin:
                lru._pinned[slot] = True
            self._counts[slot] = count
            return []
        demote = None
        if lru.size >= lru.capacity:
            vslot = lru._oldest_unpinned_slot()
            if vslot < 0:
                if pin:
                    raise RuntimeError(_PINNED_MSG)
                # Seed scan evicts the fresh key itself; it still passes
                # through the LFU with its fresh access count.
                return self.lfu.put(key, v, freq=count)
            demote = (
                int(lru._keys[vslot]),
                lru._values[vslot].copy(),
                int(self._counts[vslot]),
            )
            lru._remove_slot(vslot)
        slot = lru._insert_slot(key, v, pin)
        self._counts[slot] = count
        if demote is None:
            return []
        return self.lfu.put(demote[0], demote[1], freq=demote[2])

    def put(self, key: int, value: np.ndarray, *, pin: bool = False) -> list:
        """Insert a value; returns ``(key, value)`` pairs to flush to SSD."""
        key = int(key)
        freq = self.lfu.frequency(key)
        if freq:
            self.lfu.pop(key)
            count = freq + 1
        else:
            slot = self.lru._index.get1(key)
            count = (int(self._counts[slot]) if slot >= 0 else 0) + 1
        return self._put_single(key, value, count, pin)

    # ------------------------------------------------------------------
    @property
    def force_scalar(self) -> bool | str | None:
        """Per-instance oracle override (None → :data:`ORACLE_ENV`;
        True → per-key replay, ``"legacy"`` → plan-or-replay)."""
        return self.lru.force_scalar

    @force_scalar.setter
    def force_scalar(self, value: bool | str | None) -> None:
        self.lru.force_scalar = value
        self.lfu.force_scalar = value

    def _admission_mode(self) -> str:
        return self.lru._admission_mode()

    def get_batch(
        self, keys: np.ndarray, *, assume_unique: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized batch lookup, sequential-equivalent to :meth:`get`.

        Returns ``(values, hit_mask)``; missed rows are zero-filled.
        The batch is applied as an admission plan: promotion storms that
        would push an LRU-resident batch key into the eviction frontier
        cut the batch into runs instead of degrading to the per-key
        replay; the colliding position itself is applied with the exact
        scalar :meth:`get`.
        """
        keys = as_keys(keys)
        values = np.zeros((keys.size, self.value_dim), dtype=np.float32)
        hit = np.zeros(keys.size, dtype=bool)
        if keys.size == 0:
            return values, hit
        mode = self._admission_mode()
        if mode == "scalar":
            self.stats.scalar_fallbacks += 1
            # Per-key replay of the reference policy (parity oracle).
            # repro: allow(hot-loop)
            for i in range(keys.size):
                v = self.get(int(keys[i]))
                if v is not None:
                    values[i] = v
                    hit[i] = True
            return values, hit
        lru, lfu = self.lru, self.lfu
        prev_dup = None if assume_unique else _prev_occurrence(keys)
        hashes = _batch_hashes(keys, lru._index, lfu._index)
        s, n = 0, keys.size
        while s < n:
            bound = _dup_bound(prev_dup, s, n)
            rem = keys[s:bound]
            h = None if hashes is None else hashes[s:bound]
            lru_slots, in_lru, lru_hints = lru._index.locate(rem, h)
            lfu_slots, in_lfu = lfu._index.get(rem, h)
            run, order = lru._admission_run_length(
                inserts=in_lfu,
                res_slots=np.where(in_lru, lru_slots, -1),
                blocked=None,
                allow_spill=False,
            )
            if mode == "legacy" and (run < n or bound < n):
                # Pre-refactor plan-or-replay: any cut → per-key replay.
                self.stats.scalar_fallbacks += 1
                for i in range(n):
                    v = self.get(int(keys[i]))
                    if v is not None:
                        values[i] = v
                        hit[i] = True
                return values, hit
            if run == 0:
                self.stats.collision_splits += 1
                v = self.get(int(keys[s]))
                if v is not None:
                    values[s] = v
                    hit[s] = True
                s += 1
                continue
            e = s + run
            self._get_run(
                rem[:run],
                values[s:e],
                hit[s:e],
                lru_slots[:run],
                in_lru[:run],
                lfu_slots[:run],
                in_lfu[:run],
                lru_hints[:run],
                None if h is None else h[:run],
                order,
            )
            self.stats.admission_runs += 1
            s = e
        return values, hit

    def _get_run(
        self, keys, values, hit, lru_slots, in_lru, lfu_slots, in_lfu,
        lru_hints, hashes, order=None, out_rows=None,
    ) -> None:
        """Apply one collision-free lookup run (dense slab ops only).

        ``values``/``hit`` are views into the caller's output arrays;
        ``order`` is the eviction-order array the admission planner
        already materialized (reused, not rescanned).  ``out_rows``, when
        given, receives each hit position's final LRU slab row (resident
        slot or freshly installed promotion row; misses stay -1) so the
        prefetch path can pin without re-probing the index.
        """
        lru, lfu = self.lru, self.lfu
        overflow = max(0, lru.size + int(in_lfu.sum()) - lru.capacity)
        old_sel = (
            lru._select_evictions(overflow, order)
            if overflow
            else np.empty(0, dtype=np.int64)
        )
        hit_run = in_lru | in_lfu
        hit[...] = hit_run
        self.stats.hits += int(hit_run.sum())
        self.stats.misses += int((~hit_run).sum())
        values[in_lru] = lru._values[lru_slots[in_lru]]
        values[in_lfu] = lfu._values[lfu_slots[in_lfu]]
        # Every hit consumes one recency tick, in batch order.
        ticks = lru._ticks(int(hit_run.sum()))
        tick_of = np.empty(keys.size, dtype=np.int64)
        tick_of[hit_run] = ticks
        res = lru_slots[in_lru]
        lru._tick[res] = tick_of[in_lru]
        self._counts[res] += 1
        if out_rows is not None:
            out_rows[in_lru] = res
        if in_lfu.any():
            promoted_counts = lfu._freq[lfu_slots[in_lfu]] + 1
            lfu._remove_slots(lfu_slots[in_lfu])
            if old_sel.size:
                ekeys = lru._keys[old_sel].copy()
                evals = lru._values[old_sel].copy()
                efreqs = self._counts[old_sel].copy()
                lru._remove_slots(old_sel)
            rows = lru._alloc(int(in_lfu.sum()))
            lru._keys[rows] = keys[in_lfu]
            lru._values[rows] = values[in_lfu]
            lru._tick[rows] = tick_of[in_lfu]
            lru._pinned[rows] = False
            lru._index.install(
                keys[in_lfu],
                rows,
                lru_hints[in_lfu],
                None if hashes is None else hashes[in_lfu],
            )
            self._counts[rows] = promoted_counts
            if out_rows is not None:
                out_rows[in_lfu] = rows
            if old_sel.size:
                # Every promotion freed an LFU row before any demotion
                # needed one, so the demotions can never flush.
                fk, _ = self.lfu.bulk_insert(ekeys, evals, efreqs)
                assert fk.size == 0

    def put_batch(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        *,
        pin: bool = False,
        assume_unique: bool = False,
        assume_absent: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Insert many values; returns (flush_keys, flush_values).

        ``assume_absent`` (implies ``assume_unique``) promises every key
        is resident in neither tier — the prefetch miss stream is by
        construction — and skips the LFU membership probe.

        Sequential-equivalent to per-key :meth:`put` calls in batch
        order.  Interleavings a single dense plan cannot reproduce
        (duplicate keys, LFU-resident batch keys while the LRU overflows,
        batch keys inside the eviction frontier) cut the batch into
        admission runs; the colliding position is applied with the exact
        scalar :meth:`put` and the frontier recomputed for the next run.
        """
        keys = as_keys(keys)
        vals = np.asarray(values, dtype=np.float32)
        if vals.shape != (keys.size, self.value_dim):
            raise ValueError("values shape mismatch")
        if keys.size == 0:
            return _empty_pairs(self.value_dim)
        mode = self._admission_mode()
        if mode == "scalar":
            self.stats.scalar_fallbacks += 1
            flushed = []
            # Per-key replay of the reference policy (parity oracle).
            # repro: allow(hot-loop)
            for i in range(keys.size):
                flushed.extend(self.put(int(keys[i]), vals[i], pin=pin))
            return _as_pairs(flushed, self.value_dim)
        lru, lfu = self.lru, self.lfu
        if assume_absent:
            assume_unique = True
        prev_dup = None if assume_unique else _prev_occurrence(keys)
        hashes = _batch_hashes(keys, lru._index, lfu._index)
        fk_parts: list[np.ndarray] = []
        fv_parts: list[np.ndarray] = []
        s, n = 0, keys.size
        while s < n:
            bound = _dup_bound(prev_dup, s, n)
            rem = keys[s:bound]
            h = None if hashes is None else hashes[s:bound]
            if assume_absent:
                lfu_slots = _full_i64(rem.size, -1)
                in_lfu = np.zeros(rem.size, dtype=bool)
            else:
                lfu_slots, in_lfu = lfu._index.get(rem, h)
            lru_rows, lru_res, lru_hints = lru._index.locate(rem, h)
            run, order = lru._admission_run_length(
                inserts=~lru_res,
                res_slots=np.where(lru_res, lru_rows, -1),
                blocked=in_lfu,
                allow_spill=True,
            )
            if mode == "legacy" and (run < n or bound < n):
                # Pre-refactor plan-or-replay: any cut → per-key replay.
                self.stats.scalar_fallbacks += 1
                flushed = []
                for i in range(n):
                    flushed.extend(self.put(int(keys[i]), vals[i], pin=pin))
                return _as_pairs(flushed, self.value_dim)
            if run == 0:
                self.stats.collision_splits += 1
                flushed = self.put(int(keys[s]), vals[s], pin=pin)
                if flushed:
                    pk, pv = _as_pairs(flushed, self.value_dim)
                    fk_parts.append(pk)
                    fv_parts.append(pv)
                s += 1
                continue
            e = s + run
            fk, fv = self._put_run(
                rem[:run],
                vals[s:e],
                pin,
                lfu_slots[:run],
                in_lfu[:run],
                (lru_rows[:run], lru_res[:run]),
                lru_hints[:run],
                None if h is None else h[:run],
                order,
            )
            if fk.size:
                fk_parts.append(fk)
                fv_parts.append(fv)
            self.stats.admission_runs += 1
            s = e
        if not fk_parts:
            return _empty_pairs(self.value_dim)
        return (
            np.concatenate(fk_parts).astype(KEY_DTYPE),
            np.concatenate(fv_parts, axis=0),
        )

    def _put_run(
        self,
        keys,
        vals,
        pin,
        lfu_slots,
        in_lfu,
        located,
        lru_hints,
        hashes,
        order=None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Apply one collision-free insert run; returns its flush pairs."""
        lru, lfu = self.lru, self.lfu
        plan = lru._plan_put(
            keys, vals, pin, located=located, assume_unique=True, order=order
        )
        assert plan is not None  # guaranteed by the run conditions
        _, _, _, lru_slots, resident, old_sel, _ = plan
        # Access counts, exactly as the per-key loop would assign them.
        counts = np.ones(keys.size, dtype=np.int64)
        counts[resident] += self._counts[lru_slots[resident]]
        counts[in_lfu] = lfu._freq[lfu_slots[in_lfu]] + 1
        lfu._remove_slots(lfu_slots[in_lfu])
        # Demotion frequency seeds, read before eviction recycles rows.
        old_freqs = self._counts[old_sel].copy()
        ekeys, evals, spill, new_idx, new_rows = lru._apply_put(
            plan, hashes, lru_hints
        )
        survived = resident.copy()
        survived[spill] = False
        self._counts[lru_slots[survived]] = counts[survived]
        self._counts[new_rows] = counts[new_idx]
        # Spilled batch keys carry the count their own put assigned.
        freqs = np.concatenate([old_freqs, counts[spill]])
        return self.lfu.bulk_insert(ekeys, evals, freqs)

    def take_pending_flush(self) -> tuple[np.ndarray, np.ndarray]:
        """Drain flush-outs produced by :meth:`get` promotions."""
        out = _as_pairs(self._pending_flush, self.value_dim)
        self._pending_flush.clear()
        return out

    # ------------------------------------------------------------------
    def settle_overflow(self) -> tuple[np.ndarray, np.ndarray]:
        """Evict LRU overflow (after unpinning) through the demotion
        cascade; returns ``(flush_keys, flush_values)`` for the SSD.

        This is the public face of the end-of-batch settling the MEM-PS
        runs — callers never touch the tiers directly.
        """
        overflow = self.lru.size - self.lru.capacity
        if overflow <= 0:
            return _empty_pairs(self.value_dim)
        slots = self.lru._select_evictions(overflow)
        if slots.size < overflow:
            raise RuntimeError(_PINNED_MSG)
        ekeys = self.lru._keys[slots].copy()
        evals = self.lru._values[slots].copy()
        efreqs = self._counts[slots].copy()
        self.lru._remove_slots(slots)
        return self.lfu.bulk_insert(ekeys, evals, efreqs)

    def pin_batch(self, keys: np.ndarray) -> None:
        """Pin resident keys (raises ``KeyError`` on absent ones)."""
        self.lru.pin_batch(keys)

    def residency(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Non-mutating tier probe: ``(in_lru, in_lfu)`` masks.

        A pure index lookup — no recency ticks, no hit/miss statistics,
        no admission work.  The prefetch stage uses it to order a key
        union tier-first before the mutating :meth:`get_batch` pass.
        """
        keys = as_keys(keys)
        _, in_lru = self.lru._index.get(keys)
        _, in_lfu = self.lfu._index.get(keys)
        return in_lru, in_lfu

    def prefetch_resolve(
        self,
        keys: np.ndarray,
        prev_keys: np.ndarray | None = None,
        prev_rows: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Tier-ordered one-pass resolve of a sorted-unique prefetch union.

        Sequential-equivalent to replaying :meth:`get` over the union
        ordered [LRU hits, LFU promotions, misses] — the access order the
        prefetch stage commits to.  Each index is probed exactly once:

        * the LRU segment is pure recency ticks on the already-located
          slots (no insert can form, so no admission work);
        * the LFU segment reuses the same probe state (still valid — the
          tick segment mutates no index) and runs the admission engine;
        * the miss segment only counts (lookups never insert).

        Returns ``(hit, rows)`` in input order; ``rows[i]`` is the LRU
        slab row of every resolved position (-1 for misses, installed
        later by ``put_batch``).  Returns ``(hit, None)`` — caller must
        re-resolve through the index — in non-bulk admission modes (the
        per-key oracle and the legacy policy replay the identical
        ordered sequence through :meth:`get_batch`) or if a promotion
        storm cuts the LFU segment.

        ``prev_keys``/``prev_rows`` (the previous round's resolved union)
        let consecutive unions share their overlap: a key still sitting
        in its old slab row — verified directly against the slab, the
        source of truth the index mirrors — needs no probe at all, so
        only the cross-round *delta* pays SlotIndex traffic.
        """
        keys = as_keys(keys)
        n = keys.size
        hit = np.zeros(n, dtype=bool)
        if n == 0:
            return hit, np.empty(0, dtype=np.int64)
        lru, lfu = self.lru, self.lfu
        if self._admission_mode() != "bulk":
            hashes = mix_hash(keys)
            _, in_lru, _ = lru._index.locate(keys, hashes)
            _, in_lfu = lfu._index.get(keys, hashes)
            tier = np.where(in_lru, 0, np.where(in_lfu, 1, 2))
            order = np.argsort(tier, kind="stable")
            _, ordered_hit = self.get_batch(keys[order], assume_unique=True)
            hit[order] = ordered_hit
            return hit, None
        carried = np.zeros(n, dtype=bool)
        carried_rows = np.empty(0, dtype=np.int64)
        if (
            prev_keys is not None
            and prev_keys.size
            and prev_rows is not None
            and int(prev_rows.max(initial=-1)) < lru._keys.shape[0]
        ):
            pos = prev_keys.searchsorted(keys)
            np.minimum(pos, prev_keys.size - 1, out=pos)
            cand = prev_keys[pos] == keys
            rows_cand = prev_rows[pos[cand]]
            ok = lru._keys[rows_cand] == keys[cand]
            carried[np.flatnonzero(cand)[ok]] = True
            carried_rows = rows_cand[ok]
        if carried.any():
            sub = np.flatnonzero(~carried)
            k_sub = keys[sub]
            h_sub = _batch_hashes(k_sub, lru._index, lfu._index)
            s_slots, s_in_lru, s_hints = lru._index.locate(k_sub, h_sub)
            sf_slots, s_in_lfu = lfu._index.get(k_sub, h_sub)
            in_lru = carried.copy()
            in_lru[sub] = s_in_lru
            lru_slots = np.empty(n, dtype=np.int64)
            lru_slots[carried] = carried_rows
            lru_slots[sub] = s_slots
            in_lfu = np.zeros(n, dtype=bool)
            in_lfu[sub] = s_in_lfu
            lfu_slots = _full_i64(n, -1)
            lfu_slots[sub] = sf_slots
            lru_hints = _full_i64(n, -1)
            lru_hints[sub] = s_hints
            if h_sub is None:
                hashes = None
            else:
                hashes = np.zeros(n, dtype=np.uint64)
                hashes[sub] = h_sub
        else:
            hashes = _batch_hashes(keys, lru._index, lfu._index)
            lru_slots, in_lru, lru_hints = lru._index.locate(keys, hashes)
            lfu_slots, in_lfu = lfu._index.get(keys, hashes)
        tier = np.where(in_lru, 0, np.where(in_lfu, 1, 2))
        order = np.argsort(tier, kind="stable")
        n0 = int(in_lru.sum())
        n1 = int(in_lfu.sum())
        n2 = n - n0 - n1
        hit[in_lru] = True
        hit[in_lfu] = True
        rows = _full_i64(n, -1)
        # -- segment 1: LRU hits — ticks on known slots ----------------
        if n0:
            res = lru_slots[in_lru]
            lru._tick[res] = lru._ticks(n0)
            self._counts[res] += 1
            rows[in_lru] = res
            self.stats.hits += n0
            self.stats.admission_runs += 1
        # -- segment 2: LFU promotions — admission engine, probes reused
        if n1:
            run, evict_order = lru._admission_run_length(
                inserts=in_lfu[in_lfu],
                res_slots=_full_i64(n1, -1),
                blocked=None,
                allow_spill=False,
            )
            if run < n1:
                # A promotion storm cut the segment (impossible for a
                # sorted-unique union whose LRU segment went first, but
                # the engine — not this fast path — is the authority).
                # Continue the identical ordered sequence through
                # get_batch; the caller re-resolves rows by probe.
                _, ordered_hit = self.get_batch(
                    keys[order][n0:], assume_unique=True
                )
                hit[order[n0:]] = ordered_hit
                return hit, None
            scratch_v = np.empty((n1, self.value_dim), dtype=np.float32)
            scratch_h = np.empty(n1, dtype=bool)
            seg_rows = _full_i64(n1, -1)
            self._get_run(
                keys[in_lfu],
                scratch_v,
                scratch_h,
                lru_slots[in_lfu],
                in_lru[in_lfu],
                lfu_slots[in_lfu],
                in_lfu[in_lfu],
                lru_hints[in_lfu],
                None if hashes is None else hashes[in_lfu],
                evict_order,
                out_rows=seg_rows,
            )
            rows[in_lfu] = seg_rows
            self.stats.admission_runs += 1
        # -- segment 3: misses — lookups never insert ------------------
        if n2:
            self.stats.misses += n2
            self.stats.admission_runs += 1
        return hit, rows

    def pin_rows(self, rows: np.ndarray) -> None:
        """Pin known-resident LRU slab rows.

        The probe-free twin of :meth:`pin_batch` for callers whose row
        identities came from the same call that resolved them
        (:meth:`prefetch_resolve`).
        """
        self.lru._pinned[rows] = True

    def unpin_batch(self, keys: np.ndarray) -> None:
        self.lru.unpin_batch(keys)

    # -- resolved-slot fast path (BatchPlan) ----------------------------
    # A pinned key's LRU slab row is stable until it is unpinned: pinned
    # rows are never eviction victims and in-place overwrites reuse the
    # row.  Callers that pin a working set may therefore resolve rows once
    # and update/unpin through them without further SlotIndex probes.
    def resolve_pinned(self, keys: np.ndarray) -> np.ndarray:
        """LRU slab rows of ``keys``; all must be pinned residents."""
        keys = as_keys(keys)
        slots, found = self.lru._index.get(keys)
        if not bool(np.all(found)) or not bool(
            np.all(self.lru._pinned[slots])
        ):
            raise RuntimeError(
                "resolve_pinned requires every key to be a pinned LRU "
                "resident (the in-flight working set)"
            )
        return slots

    def update_rows(self, rows: np.ndarray, values: np.ndarray) -> None:
        """Overwrite values at resolved LRU rows (no metadata changes).

        Row-level face of :meth:`update_batch_if_present` for keys whose
        rows were resolved by :meth:`resolve_pinned` while pinned.
        """
        self.lru._values[rows] = np.asarray(values, dtype=np.float32)

    def values_at(self, rows: np.ndarray) -> np.ndarray:
        """Read values at resolved LRU rows (no metadata changes).

        Row-level face of :meth:`get_batch` for keys pinned and resolved
        by :meth:`resolve_pinned` — a pure slab gather, touching neither
        recency nor hit/miss statistics.
        """
        return self.lru._values[rows]

    def unpin_rows(self, rows: np.ndarray) -> None:
        """Release pins at resolved LRU rows (see :meth:`resolve_pinned`)."""
        self.lru._pinned[rows] = False

    def touch_rows(self, rows: np.ndarray) -> None:
        """Account an LRU access at already-resolved pinned rows.

        The consume path of the depth-k prefetch window: the rows were
        located (and pinned) by an earlier round's
        :meth:`prefetch_resolve`, so serving them this round is recency
        ticks + access counts + hit statistics on known slots — exactly
        segment 1 of the resolve, with zero index traffic.  Identical
        under every admission mode (no admission work can arise on
        pinned residents), so it cannot fork the parity oracles.
        """
        n = rows.size
        if not n:
            return
        self.lru._tick[rows] = self.lru._ticks(n)
        self._counts[rows] += 1
        self.stats.hits += n

    def unpin_rows_except(
        self, rows: np.ndarray, keep: list[np.ndarray]
    ) -> None:
        """Release pins at ``rows`` except rows present in any ``keep``.

        End-of-round face of the prefetch window: the finished round's
        rows are unpinned, but rows the still-in-flight lookahead window
        shares with it must stay pinned (a pin is a boolean, not a
        refcount, so a plain unpin would release the window's claim).
        """
        if not keep:
            self.lru._pinned[rows] = False
            return
        mask = np.zeros(self.lru._keys.shape[0], dtype=bool)
        mask[rows] = True
        for k in keep:
            mask[k] = False
        self.lru._pinned[mask] = False

    def update_if_present(self, key: int, value: np.ndarray) -> bool:
        """Overwrite a resident value without changing recency/frequency."""
        key = int(key)
        slot = self.lru._index.get1(key)
        if slot >= 0:
            self.lru._values[slot] = np.asarray(value, dtype=np.float32)
            return True
        slot = self.lfu._index.get1(key)
        if slot >= 0:
            self.lfu._values[slot] = np.asarray(value, dtype=np.float32)
            return True
        return False

    def update_batch_if_present(
        self, keys: np.ndarray, values: np.ndarray
    ) -> np.ndarray:
        """Batch :meth:`update_if_present`; returns the updated mask."""
        keys = as_keys(keys)
        values = np.asarray(values, dtype=np.float32)
        if values.shape != (keys.size, self.value_dim):
            raise ValueError("values shape mismatch")
        lru_slots, in_lru = self.lru._index.get(keys)
        self.lru._values[lru_slots[in_lru]] = values[in_lru]
        lfu_slots, in_lfu = self.lfu._index.get(keys)
        in_lfu &= ~in_lru
        self.lfu._values[lfu_slots[in_lfu]] = values[in_lfu]
        return in_lru | in_lfu

    def peek_batch(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Read-only batch lookup: no recency, frequency, or stats."""
        keys = as_keys(keys)
        values = np.zeros((keys.size, self.value_dim), dtype=np.float32)
        lru_slots, in_lru = self.lru._index.get(keys)
        values[in_lru] = self.lru._values[lru_slots[in_lru]]
        lfu_slots, in_lfu = self.lfu._index.get(keys)
        in_lfu &= ~in_lru
        values[in_lfu] = self.lfu._values[lfu_slots[in_lfu]]
        return values, in_lru | in_lfu

    def contains(self, keys) -> np.ndarray | bool:
        """Residency of a key (bool) or key array (mask), metadata-neutral."""
        if np.isscalar(keys) or isinstance(keys, (int, np.integer)):
            return int(keys) in self.lru or int(keys) in self.lfu
        keys = as_keys(keys)
        _, in_lru = self.lru._index.get(keys)
        _, in_lfu = self.lfu._index.get(keys)
        return in_lru | in_lfu

    def transform(self, keys: np.ndarray, fn) -> None:
        """Apply ``new = fn(old)`` to resident keys across both tiers."""
        keys = as_keys(keys)
        if keys.size == 0:
            return
        _, in_lru = self.lru._index.get(keys)
        self.lru.transform(keys[in_lru], fn)
        self.lfu.transform(keys[~in_lru], fn)

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """All resident ``(keys, values)`` across tiers, sorted by key."""
        lk, lv = self.lru.items()
        fk, fv = self.lfu.items()
        keys = np.concatenate([lk, fk])
        values = np.concatenate([lv, fv], axis=0)
        order = np.argsort(keys)
        return keys[order], values[order]

    def pinned_count(self) -> int:
        return self.lru.pinned_count()

    def export_state(self) -> dict[str, np.ndarray]:
        """Replacement-exact snapshot of both tiers (checkpointing).

        Per tier the entries come out in *recency order* (oldest tick
        first) together with the replacement metadata that decides future
        evictions — LRU access counts, LFU frequencies.  Re-ingesting the
        snapshot through :meth:`load_state` therefore reproduces not just
        the resident values but the exact future eviction sequence: ticks
        are only ever compared relatively, so re-assigning them in
        snapshot order is equivalence-preserving.

        The snapshot is only well-defined at a batch boundary: pinned
        entries and parked promotion flush-outs belong to an in-flight
        batch and have no on-disk meaning.
        """
        if self.lru.pinned_count():
            raise RuntimeError(
                "cannot snapshot a cache with pinned entries — finish the "
                "in-flight batch first"
            )
        if self._pending_flush:
            raise RuntimeError(
                "cannot snapshot a cache with undrained pending flush-outs"
            )
        lru_rows, lru_keys = self.lru._items_in_order(self.lru._tick)
        lfu_rows, lfu_keys = self.lfu._items_in_order(self.lfu._tick)
        return {
            "lru_keys": lru_keys.astype(KEY_DTYPE),
            "lru_values": self.lru._values[lru_rows].copy(),
            "lru_counts": self._counts[lru_rows].copy(),
            "lfu_keys": lfu_keys.astype(KEY_DTYPE),
            "lfu_values": self.lfu._values[lfu_rows].copy(),
            "lfu_freqs": self.lfu._freq[lfu_rows].copy(),
            "hits": np.int64(self.stats.hits),
            "misses": np.int64(self.stats.misses),
        }

    def load_state(self, state: dict[str, np.ndarray]) -> None:
        """Rebuild both tiers from an :meth:`export_state` snapshot."""
        lru_keys = as_keys(state["lru_keys"])
        lfu_keys = as_keys(state["lfu_keys"])
        lru_values = np.asarray(state["lru_values"], dtype=np.float32)
        lfu_values = np.asarray(state["lfu_values"], dtype=np.float32)
        if lru_values.shape != (lru_keys.size, self.value_dim) or (
            lfu_values.shape != (lfu_keys.size, self.value_dim)
        ):
            raise ValueError("cache snapshot value shape mismatch")
        if lru_keys.size > self.lru.capacity or lfu_keys.size > self.lfu.capacity:
            raise ValueError(
                "cache snapshot does not fit this cache's tier capacities"
            )
        oracle = self.force_scalar
        self.lru = LRUCache(self.lru.capacity, value_dim=self.value_dim, key_domain=self.key_domain)
        self.lfu = LFUCache(self.lfu.capacity, value_dim=self.value_dim, key_domain=self.key_domain)
        self.force_scalar = oracle
        self._counts = np.zeros(self.lru.capacity, dtype=np.int64)
        self._pending_flush = []
        # Oldest-first re-insertion assigns fresh ascending ticks, which
        # preserves every relative recency comparison the policy makes.
        if lfu_keys.size:
            flushed = self.lfu.bulk_insert(
                lfu_keys,
                lfu_values,
                np.asarray(state["lfu_freqs"], dtype=np.int64),
            )
            assert flushed[0].size == 0  # fits by the capacity check above
        if lru_keys.size:
            flush_k, _ = self.lru.put_batch(lru_keys, lru_values)
            assert flush_k.size == 0
            slots, found = self.lru._index.get(lru_keys)
            assert bool(np.all(found))
            self._counts[slots] = np.asarray(state["lru_counts"], dtype=np.int64)
        self.stats.hits = int(state["hits"])
        self.stats.misses = int(state["misses"])

    def export_delta(
        self,
        base: dict[str, np.ndarray],
        *,
        dirty_keys: np.ndarray | None = None,
    ) -> dict[str, np.ndarray]:
        """Diff the cache against a prior :meth:`export_state` snapshot.

        Replacement metadata (key order, access counts, frequencies)
        changes on nearly every access and is cheap — a few int64 per
        resident — so it ships in full.  The bulk of a snapshot is the
        value slab (``value_dim`` float32 per row); the delta ships
        values only for rows that are new since ``base`` or whose value
        changed, recorded as positions into the shipped key arrays.

        With ``dirty_keys`` (the caller's union of keys written since
        the base — e.g. the plan's local partitions plus owner-queue
        applications), changed rows are selected by membership instead
        of comparing slabs.  Both modes treat a key's base value as
        tier-independent: promotions move entries between LRU and LFU
        with values intact, so a row that merely switched tiers ships
        metadata only.
        """
        if self.lru.pinned_count():
            raise RuntimeError(
                "cannot snapshot a cache with pinned entries — finish the "
                "in-flight batch first"
            )
        if self._pending_flush:
            raise RuntimeError(
                "cannot snapshot a cache with undrained pending flush-outs"
            )
        base_keys = np.concatenate(
            [as_keys(base["lru_keys"]), as_keys(base["lfu_keys"])]
        )
        base_values = np.concatenate(
            [
                np.asarray(base["lru_values"], dtype=np.float32),
                np.asarray(base["lfu_values"], dtype=np.float32),
            ],
            axis=0,
        )
        order = np.argsort(base_keys)
        base_keys, base_values = base_keys[order], base_values[order]
        if dirty_keys is not None:
            dirty_keys = np.unique(as_keys(dirty_keys))

        def ship_mask(keys: np.ndarray, values: np.ndarray) -> np.ndarray:
            pos = base_keys.searchsorted(keys)
            pos_c = np.minimum(pos, max(0, base_keys.size - 1))
            in_base = (
                (base_keys[pos_c] == keys)
                if base_keys.size
                else np.zeros(keys.size, dtype=bool)
            )
            ship = ~in_base
            if dirty_keys is not None:
                ship |= np.isin(keys, dirty_keys)
            else:
                changed = np.zeros(keys.size, dtype=bool)
                changed[in_base] = np.any(
                    values[in_base] != base_values[pos_c[in_base]], axis=1
                )
                ship |= changed
            return ship

        lru_rows, lru_keys = self.lru._items_in_order(self.lru._tick)
        lfu_rows, lfu_keys = self.lfu._items_in_order(self.lfu._tick)
        lru_values = self.lru._values[lru_rows]
        lfu_values = self.lfu._values[lfu_rows]
        lru_ship = ship_mask(lru_keys, lru_values)
        lfu_ship = ship_mask(lfu_keys, lfu_values)
        return {
            "lru_keys": lru_keys.astype(KEY_DTYPE),
            "lru_counts": self._counts[lru_rows].copy(),
            "lru_val_idx": np.flatnonzero(lru_ship).astype(np.int64),
            "lru_values": lru_values[lru_ship].copy(),
            "lfu_keys": lfu_keys.astype(KEY_DTYPE),
            "lfu_freqs": self.lfu._freq[lfu_rows].copy(),
            "lfu_val_idx": np.flatnonzero(lfu_ship).astype(np.int64),
            "lfu_values": lfu_values[lfu_ship].copy(),
            "hits": np.int64(self.stats.hits),
            "misses": np.int64(self.stats.misses),
        }

    def load_delta(self, delta: dict[str, np.ndarray]) -> None:
        """Apply an :meth:`export_delta` diff on top of the base state.

        The cache must currently hold the base the delta was diffed
        against; unshipped rows pull their (unchanged) values out of the
        resident slabs via :meth:`peek_batch` — a key that cannot be
        resolved means the delta is being applied to the wrong base.
        """
        state: dict[str, np.ndarray] = {
            "hits": delta["hits"],
            "misses": delta["misses"],
        }
        for tier, meta in (("lru", "lru_counts"), ("lfu", "lfu_freqs")):
            keys = as_keys(delta[f"{tier}_keys"])
            idx = np.asarray(delta[f"{tier}_val_idx"], dtype=np.int64)
            shipped = np.asarray(delta[f"{tier}_values"], dtype=np.float32)
            values = np.zeros((keys.size, self.value_dim), dtype=np.float32)
            carried = np.ones(keys.size, dtype=bool)
            carried[idx] = False
            values[idx] = shipped
            if carried.any():
                old, found = self.peek_batch(keys[carried])
                if not bool(np.all(found)):
                    missing = keys[carried][~found][:5]
                    raise ValueError(
                        "cache delta carries values for keys absent from "
                        f"the base, e.g. {missing.tolist()} — wrong base?"
                    )
                values[carried] = old
            state[f"{tier}_keys"] = keys
            state[f"{tier}_values"] = values
            state[meta] = delta[meta]
        self.load_state(state)

    def flush_all(self) -> tuple[np.ndarray, np.ndarray]:
        """Drain everything (shutdown / checkpoint path)."""
        lru_rows, lru_keys = self.lru._items_in_order(self.lru._tick)
        lfu_rows, lfu_keys = self.lfu._items_in_order(self.lfu._tick)
        keys = np.concatenate([lru_keys, lfu_keys]).astype(KEY_DTYPE)
        if keys.size == 0:
            values = np.zeros((0, self.value_dim), dtype=np.float32)
        else:
            values = np.concatenate(
                [self.lru._values[lru_rows], self.lfu._values[lfu_rows]],
                axis=0,
            ).copy()
        oracle = self.force_scalar
        self.lru = LRUCache(self.lru.capacity, value_dim=self.value_dim, key_domain=self.key_domain)
        self.lfu = LFUCache(self.lfu.capacity, value_dim=self.value_dim, key_domain=self.key_domain)
        self.force_scalar = oracle
        self._counts = np.zeros(self.lru.capacity, dtype=np.int64)
        return keys, values
