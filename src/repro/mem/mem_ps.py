"""MEM-PS — the middle layer of the hierarchy (paper Section 5).

Each node's MEM-PS owns a *shard* of the global parameter space (modulo
hashing on the key, Section 5 "Prepare parameters").  For a training
batch it:

1. partitions the batch's working keys into the local shard and per-remote
   shards;
2. serves local keys from the LRU+LFU cache, falling back to the SSD-PS,
   initializing never-seen keys from the optimizer's init rule;
3. pulls remote keys from their owning nodes' MEM-PS over the network;
4. pins every working parameter in memory until the batch completes;
5. on batch completion, absorbs updated values back into the cache and
   dumps cache overflow to the SSD-PS.

All remote traffic is charged to the node's :class:`Network`; all disk
traffic to the SSD-PS ledger.  The local/remote split is what Figure 4(b)
measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.ledger import CostLedger
from repro.hardware.network import Network
from repro.hbm.partition import ModuloPartitioner
from repro.mem.cache import CombinedCache
from repro.nn.optim import SparseOptimizer
from repro.ssd.ssd_ps import SSDPS
from repro.utils.keys import all_unique, as_keys
from repro.utils.rng import spawn

__all__ = ["MemPS", "PrepareStats"]

_NODE_SALT = 0x6E6F6465  # "node"


@dataclass
class _WindowEntry:
    """One resolved future round of the depth-k prefetch window.

    ``rows`` are pinned LRU slab rows — pinned rows are never eviction
    victims and in-place overwrites reuse the row, so the entry stays
    valid (no slab re-verification needed) until its round consumes it.
    """

    keys: np.ndarray
    rows: np.ndarray
    hit: np.ndarray
    ssd_found: np.ndarray
    admission: object


@dataclass(frozen=True)
class PrepareStats:
    """Timing/traffic decomposition of one prepare() call."""

    n_keys: int
    n_local: int
    n_remote: int
    n_cache_hits: int
    n_ssd_loaded: int
    n_fresh: int
    local_seconds: float
    remote_seconds: float

    @property
    def seconds(self) -> float:
        """Critical-path time: local and remote pulls run in parallel
        (paper Fig. 4(b): 'the local and remote pulling operations are
        paralleled')."""
        return max(self.local_seconds, self.remote_seconds)


class MemPS:
    """One node's main-memory parameter server."""

    def __init__(
        self,
        node_id: int,
        n_nodes: int,
        optimizer: SparseOptimizer,
        ssd_ps: SSDPS,
        *,
        cache_capacity: int = 1_000_000,
        lru_fraction: float = 0.5,
        network: Network | None = None,
        ledger: CostLedger | None = None,
        seed: int = 0,
        cache: CombinedCache | None = None,
        key_domain: int | None = None,
        prefetch_pin_fraction: float = 0.8,
    ) -> None:
        if not 0 <= node_id < n_nodes:
            raise ValueError("node_id out of range")
        self.node_id = node_id
        self.n_nodes = n_nodes
        self.optimizer = optimizer
        self.ssd_ps = ssd_ps
        self.ledger = ledger if ledger is not None else CostLedger()
        self.network = network
        self.partitioner = ModuloPartitioner(n_nodes, salt=_NODE_SALT)
        #: any cache speaking the combined-cache surface works here — the
        #: store microbenchmark injects the seed per-key implementation.
        self.cache = cache if cache is not None else CombinedCache(
            cache_capacity,
            lru_fraction=lru_fraction,
            value_dim=optimizer.value_dim,
            key_domain=key_domain,
        )
        self._rng = spawn(seed, "mem_ps", node_id)
        #: per-key init seed — identical on every node so a key initializes
        #: the same regardless of which node first touches it.
        self._init_seed = seed
        #: peers[i] is node i's MemPS; wired by the cluster after construction.
        self.peers: list["MemPS"] = []
        #: keys pinned on behalf of remote pulls this batch (released by
        #: :meth:`end_batch`).
        self._served_keys: list[np.ndarray] = []
        #: the round's resolved :class:`~repro.plan.NodePrefetchPlan`
        #: (set by :meth:`prefetch`, cleared by :meth:`end_batch`); while
        #: set, the serve/update paths go through resolved LRU rows
        #: instead of re-probing the cache.
        self._prefetch_plan = None
        #: previous round's resolved (union keys, LRU rows) — the probe
        #: carry-over seed for the next :meth:`prefetch` (each carried
        #: row is re-verified against the slab before reuse).
        self._prev_union: tuple = (None, None)
        #: depth-k lookahead window: entry ``i`` is the resolved-and-
        #: pinned union of round ``b+1+i`` (consumed FIFO by
        #: :meth:`prefetch`; empty at depth 1, where behavior is
        #: bit-identical to the pre-window code path).
        self._window: list[_WindowEntry] = []
        #: LRU-tier pin ceiling of the window (see
        #: ``ClusterConfig.prefetch_pin_fraction``)
        self.prefetch_pin_fraction = prefetch_pin_fraction
        #: rounds where the window backed off to a shallower depth
        #: because the pin ceiling would have been crossed (drained per
        #: round by the cluster into ``BatchStats``)
        self.depth_backoffs = 0

    # ------------------------------------------------------------------
    def owner_of(self, keys: np.ndarray) -> np.ndarray:
        return self.partitioner.part_of(keys)

    def owns(self, keys: np.ndarray) -> np.ndarray:
        return self.owner_of(keys) == self.node_id

    # ------------------------------------------------------------------
    def _admission_snapshot(self) -> tuple[int, int, int]:
        """(runs, collision splits, scalar fallbacks) counter snapshot."""
        stats = getattr(self.cache, "stats", None)
        if stats is None or not hasattr(stats, "admission_runs"):
            return (0, 0, 0)
        return (
            stats.admission_runs,
            stats.collision_splits,
            stats.scalar_fallbacks,
        )

    def _admission_delta(self, before: tuple[int, int, int]):
        from repro.plan import AdmissionRecord

        after = self._admission_snapshot()
        return AdmissionRecord(
            n_runs=after[0] - before[0],
            n_collision_splits=after[1] - before[1],
            n_scalar_fallbacks=after[2] - before[2],
        )

    # ------------------------------------------------------------------
    def fetch_local(
        self,
        keys: np.ndarray,
        *,
        pin: bool = True,
        out_masks: dict | None = None,
        assume_unique: bool = False,
    ) -> tuple[np.ndarray, float, int, int, int]:
        """Serve locally-owned ``keys`` from cache → SSD → fresh-init.

        Returns ``(values, seconds, cache_hits, ssd_loaded, fresh)``.
        Loaded/initialized values are inserted (and pinned) in the cache;
        cache overflow is flushed to the SSD-PS immediately.  With
        ``out_masks``, records the hit/miss split for the caller's
        :class:`~repro.plan.NodePlan`: ``out_masks["hit"]`` is the cache
        hit mask over ``keys`` and ``out_masks["ssd_found"]`` marks which
        of the misses the SSD resolved.  ``assume_unique=True`` is the
        plan's pre-split: keys known unique by construction skip the
        cache admission planner's duplicate-boundary pass.
        """
        keys = as_keys(keys)
        values, hit = self.cache.get_batch(keys, assume_unique=assume_unique)
        if out_masks is not None:
            out_masks["hit"] = hit
            out_masks["ssd_found"] = np.zeros(keys.size, dtype=bool)
        seconds = 0.0
        # LFU->LRU promotions inside get_batch may flush cold entries;
        # persist them before anything else can reference them.
        pf_k, pf_v = self.cache.take_pending_flush()
        if pf_k.size:
            seconds += self.ssd_ps.dump(pf_k, pf_v).total_seconds
        if pin:
            # Pin hits immediately — inserting the misses below may evict
            # them otherwise, breaking the in-flight working set.
            # ``get_batch`` promotes LFU hits into the LRU tier, so every
            # hit key is in the LRU by now.
            self.cache.pin_batch(keys[hit])
        n_ssd = 0
        n_fresh = 0
        miss_idx = np.flatnonzero(~hit)
        if miss_idx.size:
            miss_keys = keys[miss_idx]
            result, stats = self.ssd_ps.load(miss_keys)
            seconds += stats.total_seconds
            if out_masks is not None:
                out_masks["ssd_found"][miss_idx] = result.found
            vals = result.values
            fresh_idx = np.flatnonzero(~result.found)
            n_ssd = int(result.found.sum())
            n_fresh = fresh_idx.size
            if fresh_idx.size:
                vals[fresh_idx] = self.optimizer.init_for_keys(
                    miss_keys[fresh_idx], seed=self._init_seed
                )
            values[miss_idx] = vals
            flush_k, flush_v = self.cache.put_batch(
                miss_keys,
                vals,
                pin=pin,
                assume_unique=assume_unique,
                # A unique key stream's misses are resident in neither
                # tier (a get never inserts), so the LFU probe is moot.
                assume_absent=assume_unique,
            )
            if flush_k.size:
                seconds += self.ssd_ps.dump(flush_k, flush_v).total_seconds
        return values, seconds, int(hit.sum()), n_ssd, n_fresh

    def serve_remote(
        self,
        keys: np.ndarray,
        *,
        pre_owned: bool = False,
        requester: int | None = None,
    ) -> tuple[np.ndarray, float]:
        """Handle a pull request from a peer (keys are owned here).

        ``pre_owned=True`` skips the ownership re-hash — the caller's
        :class:`~repro.plan.NodePlan` partitioned the keys by owner
        already (validated by the plan unit tests).  When this node ran
        the prefetch stage this round and the caller identifies itself
        via ``requester``, the served partition is already resolved,
        loaded, and pinned — the pull is a pure row gather with no
        device traffic and no extra pin (the prefetch pin covers it
        until ``end_batch``).
        """
        keys = as_keys(keys)
        if not pre_owned and not np.all(self.owns(keys)):
            raise ValueError("serve_remote called with keys this node does not own")
        pplan = self._prefetch_plan
        if pplan is not None and requester is not None:
            pos = pplan.serve_pos[requester]
            assert np.array_equal(keys, pplan.keys[pos]), (
                "prefetch plan and remote pull diverged"
            )
            return self.cache.values_at(pplan.rows[pos]), 0.0
        values, seconds, _, _, _ = self.fetch_local(
            keys, pin=True, assume_unique=pre_owned
        )
        self._served_keys.append(keys)
        return values, seconds

    def prefetch(self, pplan) -> float:
        """Resolve, load, and pin the round's full MEM working set.

        ``pplan`` is the node's :class:`~repro.plan.NodePrefetchPlan`:
        the sorted union of the local working partition, every partition
        served to a peer, and the owner-queue keys of every sync round.
        The whole set goes through cache → SSD → fresh-init exactly once
        and stays pinned until :meth:`end_batch`; the resolved LRU rows
        land on the plan, so every later MEM access this round is a pure
        row gather (no SlotIndex probe, no admission work, no eviction
        risk).  Returns simulated seconds (SSD loads plus overflow
        dumps — the same charges the unprefetched path would pay, moved
        earlier in the round).

        At depth ``k`` > 1 the round's union was usually resolved by an
        earlier round's lookahead and sits pinned in the sliding window:
        consuming it is pure accounting on known rows
        (:meth:`CombinedCache.touch_rows`).  Either way the window is
        then extended toward ``pplan.lookahead`` — each future union
        pays only its *delta* against the deepest resolved union, under
        the pin ceiling (see :meth:`_extend_window`).  At depth 1 the
        window is empty and this is bit-identical to the pre-window
        code path.
        """
        seconds = 0.0
        if self._window:
            entry = self._window.pop(0)
            assert np.array_equal(entry.keys, pplan.keys), (
                "prefetch window and round plan diverged"
            )
            self.cache.touch_rows(entry.rows)
            pplan.rows = entry.rows
            pplan.hit = entry.hit
            pplan.ssd_found = entry.ssd_found
            pplan.admission = entry.admission
        else:
            seconds += self._resolve_current(pplan)
        self._prev_union = (pplan.keys, pplan.rows)
        self._prefetch_plan = pplan
        seconds += self._extend_window(pplan)
        return seconds

    def _resolve_current(self, pplan) -> float:
        """Full cache → SSD → fresh-init resolve of the current round."""
        keys = pplan.keys
        adm_before = self._admission_snapshot()
        seconds = 0.0
        # Tier-ordered access: LRU hits first (pure recency ticks — no
        # eviction can form), then LFU promotions (every LRU batch key
        # is hot by now, so victims come from the non-batch cold tail),
        # then misses.  The sorted union interleaves the tiers, which
        # would force the admission engine to cut a run at every cold
        # batch key the promotion storm reaches; ordered this way the
        # whole union applies in O(1) collision-free runs — and the
        # cache resolves it in a single probe pass, handing back the
        # pinned rows directly.  The scalar oracle replays the identical
        # sequence, so parity is untouched.  Consecutive rounds overlap
        # heavily under a zipf head, so the previous union's resolved
        # rows ride along: still-valid keys skip the probe entirely.
        prev_k, prev_r = self._prev_union
        hit, rows = self.cache.prefetch_resolve(keys, prev_k, prev_r)
        pf_k, pf_v = self.cache.take_pending_flush()
        if pf_k.size:
            seconds += self.ssd_ps.dump(pf_k, pf_v).total_seconds
        if rows is None:
            self.cache.pin_batch(keys[hit])
        else:
            self.cache.pin_rows(rows[hit])
        ssd_found = np.zeros(keys.size, dtype=bool)
        miss_idx = np.flatnonzero(~hit)
        if miss_idx.size:
            miss_keys = keys[miss_idx]
            result, stats = self.ssd_ps.load(miss_keys)
            seconds += stats.total_seconds
            ssd_found[miss_idx] = result.found
            vals = result.values
            fresh_idx = np.flatnonzero(~result.found)
            if fresh_idx.size:
                vals[fresh_idx] = self.optimizer.init_for_keys(
                    miss_keys[fresh_idx], seed=self._init_seed
                )
            flush_k, flush_v = self.cache.put_batch(
                miss_keys, vals, pin=True, assume_absent=True
            )
            if flush_k.size:
                seconds += self.ssd_ps.dump(flush_k, flush_v).total_seconds
        if rows is None:
            pplan.rows = self.cache.resolve_pinned(keys)
        else:
            if miss_idx.size:
                rows[miss_idx] = self.cache.resolve_pinned(keys[miss_idx])
            pplan.rows = rows
        pplan.hit = hit
        pplan.ssd_found = ssd_found
        pplan.admission = self._admission_delta(adm_before)
        return seconds

    def _pin_ceiling(self) -> int | None:
        """Max LRU rows the round + window may pin (None = no limit)."""
        lru = getattr(self.cache, "lru", None)
        cap = getattr(lru, "capacity", None)
        if cap is None:
            return None
        return int(self.prefetch_pin_fraction * cap)

    def _extend_window(self, pplan) -> float:
        """Resolve-and-pin the lookahead unions into the sliding window.

        Each future union shares most of its keys with the deepest
        already-resolved union (the consecutive-round overlap of a
        skewed key stream), and those keys are pinned — their slab rows
        are proof of residency — so only the union *delta* pays index
        probes, SSD loads, and pins.  A delta that would push the pinned
        LRU fraction past the ceiling stops the extension for this round
        (counted in :attr:`depth_backoffs`); the next round retries from
        the shallower window, so deep pins can never starve admission.
        """
        la = getattr(pplan, "lookahead", None)
        if not la:
            return 0.0
        seconds = 0.0
        ceiling = self._pin_ceiling()
        for d in range(len(self._window), len(la)):
            union = la[d]
            if self._window:
                deep_k = self._window[-1].keys
                deep_r = self._window[-1].rows
            else:
                deep_k, deep_r = pplan.keys, pplan.rows
            n = union.size
            hit = np.zeros(n, dtype=bool)
            rows = np.empty(n, dtype=np.int64)
            rows.fill(-1)
            ssd_found = np.zeros(n, dtype=bool)
            if deep_k is not None and deep_k.size and deep_r is not None:
                pos = deep_k.searchsorted(union)
                np.minimum(pos, deep_k.size - 1, out=pos)
                carried = deep_k[pos] == union
            else:
                pos = None
                carried = np.zeros(n, dtype=bool)
            delta_idx = np.flatnonzero(~carried)
            if (
                ceiling is not None
                and self.cache.pinned_count() + delta_idx.size > ceiling
            ):
                self.depth_backoffs += 1
                break
            adm_before = self._admission_snapshot()
            if pos is not None:
                # Carried rows are pinned — residency is structural, no
                # slab re-verification, no probe, no new pin.
                rows[carried] = deep_r[pos[carried]]
                hit[carried] = True
            if delta_idx.size:
                d_keys = union[delta_idx]
                d_hit, d_rows = self.cache.prefetch_resolve(d_keys)
                pf_k, pf_v = self.cache.take_pending_flush()
                if pf_k.size:
                    seconds += self.ssd_ps.dump(pf_k, pf_v).total_seconds
                if d_rows is None:
                    self.cache.pin_batch(d_keys[d_hit])
                else:
                    self.cache.pin_rows(d_rows[d_hit])
                miss_idx = np.flatnonzero(~d_hit)
                if miss_idx.size:
                    miss_keys = d_keys[miss_idx]
                    result, stats = self.ssd_ps.load(miss_keys)
                    seconds += stats.total_seconds
                    ssd_found[delta_idx[miss_idx]] = result.found
                    vals = result.values
                    fresh_idx = np.flatnonzero(~result.found)
                    if fresh_idx.size:
                        vals[fresh_idx] = self.optimizer.init_for_keys(
                            miss_keys[fresh_idx], seed=self._init_seed
                        )
                    flush_k, flush_v = self.cache.put_batch(
                        miss_keys, vals, pin=True, assume_absent=True
                    )
                    if flush_k.size:
                        seconds += self.ssd_ps.dump(
                            flush_k, flush_v
                        ).total_seconds
                if d_rows is None:
                    d_rows = self.cache.resolve_pinned(d_keys)
                elif miss_idx.size:
                    d_rows[miss_idx] = self.cache.resolve_pinned(
                        d_keys[miss_idx]
                    )
                rows[delta_idx] = d_rows
                hit[delta_idx] = d_hit
            self._window.append(
                _WindowEntry(
                    keys=union,
                    rows=rows,
                    hit=hit,
                    ssd_found=ssd_found,
                    admission=self._admission_delta(adm_before),
                )
            )
        return seconds

    def drop_window(self) -> None:
        """Release the lookahead window's pins and forget its entries.

        Values were never speculatively mutated — window entries are
        resolve/load/pin only — so dropping the window is purely a
        bookkeeping reset (used by fault recovery and full-cache
        flushes; the next prefetch re-resolves from scratch).
        """
        for e in self._window:
            self.cache.unpin_rows(e.rows)
        self._window.clear()

    def take_depth_backoffs(self) -> int:
        """Drain the backoff counter (per-round ``BatchStats`` feed)."""
        n = self.depth_backoffs
        self.depth_backoffs = 0
        return n

    def prepare(
        self, working_keys: np.ndarray, *, plan=None
    ) -> tuple[np.ndarray, PrepareStats]:
        """Gather values for a batch's working set (Alg. 1 lines 3–4).

        Returns values aligned with ``working_keys`` plus the stats used by
        the Fig. 4(b) decomposition.  With a
        :class:`~repro.plan.NodePlan`, the owner partition comes from the
        plan's precomputed index arrays (no re-hash, no re-unique — the
        plan guarantees uniqueness by construction, demoting the
        ``all_unique`` check to a debug assertion) and the resolved cache
        state is recorded on the plan for the write-back stage.
        """
        keys = as_keys(working_keys)
        if plan is None:
            if not all_unique(keys):
                raise ValueError("working keys must be unique")
            owners = self.owner_of(keys)
            local_idx = np.flatnonzero(owners == self.node_id)
            part_of = lambda p: np.flatnonzero(owners == p)  # noqa: E731
        else:
            assert all_unique(keys), "BatchPlan working keys must be unique"
            local_idx = plan.node_parts[self.node_id]
            part_of = lambda p: plan.node_parts[p]  # noqa: E731
        values = np.zeros((keys.size, self.optimizer.value_dim), dtype=np.float32)

        pplan = self._prefetch_plan if plan is not None else None
        if pplan is not None:
            # The prefetch stage already resolved, loaded, and pinned the
            # local partition — a pure row gather, with the hit/SSD split
            # and admission record replayed from the prefetch probe.
            local_rows = pplan.rows[pplan.local_pos]
            local_hits = pplan.hit[pplan.local_pos]
            local_found = pplan.ssd_found[pplan.local_pos]
            values[local_idx] = self.cache.values_at(local_rows)
            plan.record_prepare(
                local_slots=local_rows,
                local_hits=local_hits,
                ssd_found=local_found,
                admission=pplan.admission,
            )
            t_local = 0.0
            n_hits = int(local_hits.sum())
            n_ssd = int(local_found.sum())
            n_fresh = local_idx.size - n_hits - n_ssd
        else:
            masks: dict | None = {} if plan is not None else None
            adm_before = self._admission_snapshot()
            vals, t_local, n_hits, n_ssd, n_fresh = self.fetch_local(
                keys[local_idx], out_masks=masks, assume_unique=plan is not None
            )
            values[local_idx] = vals
            if plan is not None:
                # Resolved once here; the write-back consumes these rows
                # instead of re-probing the SlotIndex (every local working
                # key is now a pinned LRU resident).  The admission record
                # keeps how the cache split this prepare into bulk runs vs.
                # scalar collision splits — the pressure-regime
                # observability the e2e ledger and the zero-fallback
                # acceptance gate read.
                plan.record_prepare(
                    local_slots=self.cache.resolve_pinned(keys[local_idx]),
                    local_hits=masks["hit"],
                    ssd_found=masks["ssd_found"],
                    admission=self._admission_delta(adm_before),
                )

        t_remote = 0.0
        n_remote = 0
        for peer_id in range(self.n_nodes):
            if peer_id == self.node_id:
                continue
            idx = part_of(peer_id)
            if idx.size == 0:
                continue
            peer = self.peers[peer_id]
            vals, t_serve = peer.serve_remote(
                keys[idx],
                pre_owned=plan is not None,
                requester=self.node_id if plan is not None else None,
            )
            values[idx] = vals
            n_remote += idx.size
            # Request (keys out) + response (keys+values back).
            nbytes = idx.size * (8 + (8 + 4 * self.optimizer.value_dim))
            t_net = (
                self.network.send(nbytes, category="net_remote_pull")
                if self.network is not None
                else 0.0
            )
            t_remote += t_serve + t_net
        stats = PrepareStats(
            n_keys=keys.size,
            n_local=local_idx.size,
            n_remote=n_remote,
            n_cache_hits=n_hits,
            n_ssd_loaded=n_ssd,
            n_fresh=n_fresh,
            local_seconds=t_local,
            remote_seconds=t_remote,
        )
        return values, stats

    # ------------------------------------------------------------------
    def absorb_updates(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        *,
        unpin: bool = True,
        plan=None,
    ) -> float:
        """Write updated values back after a batch (Alg. 1 lines 16–18).

        Only locally-owned keys are kept (remote owners get their updates
        from their own GPUs — Section 5 "Update parameters").  Cache
        overflow is dumped to the SSD-PS; returns simulated seconds.
        With a :class:`~repro.plan.NodePlan` (carrying the LRU rows the
        prepare stage resolved), the owner split and the cache update go
        through precomputed indices — no re-hash, no SlotIndex probe.
        """
        keys = as_keys(keys)
        seconds = 0.0
        if plan is not None and plan.local_slots is not None:
            part = plan.local_idx
            vals_own = np.asarray(values, dtype=np.float32)[part]
            self.cache.update_rows(plan.local_slots, vals_own)
            if self._prefetch_plan is not None:
                # Rows stay pinned: end_batch releases the whole prefetch
                # set in one row-level unpin (the local slots are a
                # subset of its rows) and settles overflow then.
                return seconds
            if unpin:
                self.cache.unpin_rows(plan.local_slots)
                fk, fv = self.cache.settle_overflow()
                if fk.size:
                    seconds += self.ssd_ps.dump(fk, fv).total_seconds
            return seconds
        own = self.owns(keys)
        keys_own = keys[own]
        vals_own = np.asarray(values, dtype=np.float32)[own]
        self.cache.update_batch_if_present(keys_own, vals_own)
        if unpin:
            self.cache.unpin_batch(keys_own)
            # Unpinning may leave the LRU over capacity; settle it now.
            fk, fv = self.cache.settle_overflow()
            if fk.size:
                seconds += self.ssd_ps.dump(fk, fv).total_seconds
        return seconds

    def apply_gradients(
        self,
        keys: np.ndarray,
        grads: np.ndarray,
        *,
        pre_owned: bool = False,
        rows: np.ndarray | None = None,
    ) -> float:
        """Owner-side optimizer application for keys *not* staged in the
        local HBM (the update queue described in the module docstring of
        :mod:`repro.hbm.hbm_ps`).

        ``pre_owned=True`` skips the ownership filter — the caller (a
        planned round) has already partitioned the keys by owner.  With
        ``rows`` (the prefetch plan's resolved owner-queue rows), the
        keys are pinned LRU residents and the optimizer applies through
        a pure row gather/scatter — no cache probe, no admission work,
        no eviction risk, no device traffic.
        """
        keys = as_keys(keys)
        if rows is not None:
            if keys.size == 0:
                return 0.0
            # Gradients stay float64 through the optimizer (SparseUpdate
            # contract; order-independent accumulation).
            # repro: allow(f64-hot-path)
            grads = np.asarray(grads, dtype=np.float64)
            new_values = self.optimizer.apply(self.cache.values_at(rows), grads)
            self.cache.update_rows(rows, new_values)
            return 0.0
        if pre_owned:
            grads = np.asarray(grads, dtype=np.float64)  # repro: allow(f64-hot-path)
        else:
            own = self.owns(keys)
            keys = keys[own]
            # repro: allow(f64-hot-path)
            grads = np.asarray(grads, dtype=np.float64)[own]
        if keys.size == 0:
            return 0.0
        values, t_fetch, _, _, _ = self.fetch_local(
            keys, pin=False, assume_unique=pre_owned
        )
        new_values = self.optimizer.apply(values, grads)
        # Re-insert rather than update-if-present: under memory pressure a
        # key fetched above can already have been evicted again, and its
        # update must not be lost.  The admission engine keeps this exact
        # under pressure without degrading to the per-key replay — a key
        # sitting in the eviction frontier just starts a new run.
        flush_k, flush_v = self.cache.put_batch(
            keys, new_values, assume_unique=pre_owned
        )
        if flush_k.size:
            t_fetch += self.ssd_ps.dump(flush_k, flush_v).total_seconds
        return t_fetch

    def end_batch(self) -> float:
        """Release the round's pins and settle overflow.

        In prefetch mode the whole resolved working set (local + served
        + owner-queue rows) unpins in a single row-level release; the
        unprefetched path only holds the remote-pull pins taken by
        :meth:`serve_remote` here (local pins were released by
        :meth:`absorb_updates`).
        """
        seconds = 0.0
        if self._prefetch_plan is not None:
            if self._window:
                # Rows the in-flight lookahead window shares with the
                # finished round keep their pin (a pin is a boolean,
                # not a refcount).
                self.cache.unpin_rows_except(
                    self._prefetch_plan.rows,
                    [e.rows for e in self._window],
                )
            else:
                self.cache.unpin_rows(self._prefetch_plan.rows)
            self._prefetch_plan = None
        for keys in self._served_keys:
            self.cache.unpin_batch(keys)
        self._served_keys.clear()
        fk, fv = self.cache.settle_overflow()
        if fk.size:
            seconds += self.ssd_ps.dump(fk, fv).total_seconds
        return seconds

    def abort_round(self) -> float:
        """Roll in-flight round state back to a clean boundary.

        Fault-recovery counterpart of :meth:`end_batch`: releases the
        prefetch pins and remote-serve pins of a round that will never
        reach write-back, settles any overflow the partial round queued,
        and — unlike ``end_batch`` — forgets the cross-round prefetch
        union, because the aborted round's resolved rows must not seed
        the retry's ``prefetch_resolve`` carry-over (the retry re-derives
        residency from scratch; values were never mutated, so this is
        purely a bookkeeping reset).
        """
        self.drop_window()
        seconds = self.end_batch()
        self._prev_union = (None, None)
        return seconds

    def flush_to_ssd(self) -> float:
        """Drain the entire cache to the SSD-PS (checkpoint/shutdown)."""
        self.drop_window()
        fk, fv = self.cache.flush_all()
        if fk.size == 0:
            return 0.0
        return self.ssd_ps.dump(fk, fv).total_seconds

    # ------------------------------------------------------------------
    def export_state(self) -> dict[str, np.ndarray]:
        """Snapshot the MEM tier for a checkpoint shard.

        Only valid at a round boundary: remote-pull pins must have been
        released by :meth:`end_batch`, otherwise the cache snapshot would
        capture in-flight working-set state that a restore cannot honour.
        """
        if self._served_keys or self._prefetch_plan is not None:
            raise RuntimeError(
                "MEM-PS still holds in-flight pins — checkpoint only at "
                "a round boundary (after end_batch)"
            )
        return self._with_window_unpinned(self.cache.export_state)

    def _with_window_unpinned(self, fn):
        """Run a cache snapshot with the window's pins lifted.

        At depth > 1 a round boundary still has the lookahead window
        pinned, but pins are in-flight bookkeeping the snapshot format
        deliberately excludes — a restore re-resolves its window from
        scratch.  Lifting the pins around the (read-only) export and
        re-applying them is observationally pure: nothing can evict
        between the two, and the exported bytes are identical to a
        windowless cache in the same state.
        """
        if not self._window:
            return fn()
        rows = [e.rows for e in self._window]
        for r in rows:
            self.cache.unpin_rows(r)
        try:
            return fn()
        finally:
            for r in rows:
                self.cache.pin_rows(r)

    def load_state(self, state: dict[str, np.ndarray]) -> None:
        """Restore the MEM tier from an :meth:`export_state` snapshot."""
        self.cache.load_state(state)
        self._served_keys.clear()
        self._prefetch_plan = None
        self._prev_union = (None, None)
        # Window rows reference the pre-restore slab; the restored cache
        # carries no pins, so the entries are dropped, not unpinned.
        self._window.clear()

    def export_delta(
        self,
        base: dict[str, np.ndarray],
        *,
        dirty_keys: np.ndarray | None = None,
    ) -> dict[str, np.ndarray]:
        """Diff the MEM tier against a prior :meth:`export_state`.

        Same round-boundary contract as :meth:`export_state`; the heavy
        lifting (full metadata, changed-values-only slab) happens in
        :meth:`CombinedCache.export_delta`.
        """
        if self._served_keys or self._prefetch_plan is not None:
            raise RuntimeError(
                "MEM-PS still holds in-flight pins — checkpoint only at "
                "a round boundary (after end_batch)"
            )
        return self._with_window_unpinned(
            lambda: self.cache.export_delta(base, dirty_keys=dirty_keys)
        )

    def load_delta(self, delta: dict[str, np.ndarray]) -> None:
        """Apply an :meth:`export_delta` diff on top of the base state."""
        self.cache.load_delta(delta)
        self._served_keys.clear()
        self._prefetch_plan = None
        self._prev_union = (None, None)
        self._window.clear()
