"""repro — reproduction of the MLSys 2020 Distributed Hierarchical GPU
Parameter Server (Zhao et al., Baidu).

Public API highlights
---------------------
- :class:`repro.config.ModelSpec` / :data:`repro.config.PAPER_MODELS` — the
  paper's Table 3 model zoo.
- :class:`repro.core.cluster.HPSCluster` — the 3-layer (HBM/MEM/SSD)
  hierarchical parameter server, trained with Algorithm 1.
- :class:`repro.core.trainer.Trainer` / ``ReferenceTrainer`` — training
  drivers and the lossless single-store reference.
- :class:`repro.baselines.mpi_ps.MPIClusterBaseline` — the in-memory MPI
  parameter-server baseline the paper compares against.
- :mod:`repro.hashing.op_osrp` — the OP+OSRP hashing study of Section 2.
- :mod:`repro.ckpt` — crash-consistent checkpoint/restore of the
  three-tier store plus :class:`repro.ckpt.FailureInjector` for
  kill-and-recover experiments.
"""

from repro.config import PAPER_MODELS, ClusterConfig, ModelSpec, scaled_model

__version__ = "1.0.0"

__all__ = [
    "PAPER_MODELS",
    "ClusterConfig",
    "ModelSpec",
    "scaled_model",
    "__version__",
]
