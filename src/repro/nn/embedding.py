"""Sparse embedding layer.

Maps each example's sparse feature ids to embedding vectors pulled from the
parameter server and pools them per slot (sum pooling), producing the dense
input of the MLP tower (paper Figure 1).  The layer itself is stateless —
embedding values live in the PS; this module only does the gather/pool
forward and the scatter/accumulate backward.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.batching import Batch
from repro.utils.keys import as_keys

__all__ = ["EmbeddingLayer", "EmbeddingGradient"]


def _scatter_add(
    idx: np.ndarray, vals: np.ndarray, n_bins: int, dim: int
) -> np.ndarray:
    """``out[idx[i]] += vals[i]`` via one :func:`numpy.bincount` per column.

    Bit-identical to ``np.add.at(out, idx, vals)``: both accumulate
    sequentially in input order, so every bin sees the same additions in
    the same order and rounds identically — ``bincount`` just does it
    without the per-element buffered-ufunc dispatch.
    """
    out = np.empty((n_bins, dim), dtype=np.float64)
    for d in range(dim):
        out[:, d] = np.bincount(idx, weights=vals[:, d], minlength=n_bins)
    return out


@dataclass(frozen=True)
class EmbeddingGradient:
    """Sparse gradient: one row of ``grads`` per key in ``keys``."""

    keys: np.ndarray
    grads: np.ndarray

    def __post_init__(self) -> None:
        if self.keys.shape[0] != self.grads.shape[0]:
            raise ValueError("keys/grads length mismatch")


class EmbeddingLayer:
    """Gather–pool forward and scatter–accumulate backward.

    Parameters
    ----------
    n_slots:
        Number of feature slots; pooled slot embeddings are concatenated so
        the MLP input width is ``n_slots * dim``.
    dim:
        Embedding dimension per key.
    """

    def __init__(self, n_slots: int, dim: int) -> None:
        if n_slots <= 0 or dim <= 0:
            raise ValueError("n_slots and dim must be positive")
        self.n_slots = n_slots
        self.dim = dim
        self._cache: tuple | None = None
        self._pos_cache: dict[tuple[int, int], tuple] = {}

    @property
    def out_dim(self) -> int:
        return self.n_slots * self.dim

    # ------------------------------------------------------------------
    def _slot_of_positions(self, batch: Batch) -> tuple[np.ndarray, np.ndarray, int]:
        """Row id and slot id for every flat key position.

        Rows must have a length divisible by ``n_slots`` (the generator's
        slot-major layout); slot of position ``j`` within a row of length
        ``L`` is ``j // (L / n_slots)``.
        """
        lengths = batch.row_lengths()
        if lengths.size and lengths.min() == lengths.max():
            # Uniform rows (the generator's layout): the position maps
            # depend only on the shape, so memoize them per (rows, nnz).
            sig = (batch.n_examples, batch.n_nonzeros)
            cached = self._pos_cache.get(sig)
            if cached is None:
                cached = self._positions_uncached(batch, lengths)
                self._pos_cache[sig] = cached
            return cached
        return self._positions_uncached(batch, lengths)

    def _positions_uncached(
        self, batch: Batch, lengths: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int]:
        if np.any(lengths % self.n_slots):
            raise ValueError(
                "every example's nonzero count must be divisible by n_slots"
            )
        rows = np.repeat(np.arange(batch.n_examples), lengths)
        pos_in_row = np.arange(batch.n_nonzeros) - np.repeat(
            batch.offsets[:-1], lengths
        )
        ids_per_slot = np.repeat(lengths // self.n_slots, lengths)
        slots = pos_in_row // np.maximum(ids_per_slot, 1)
        return rows, slots.astype(np.int64), batch.n_examples

    def forward(
        self,
        batch: Batch,
        unique_keys: np.ndarray,
        emb_values: np.ndarray,
        *,
        flat_idx: np.ndarray | None = None,
    ) -> np.ndarray:
        """Pooled embedding features, shape ``(n_examples, n_slots * dim)``.

        Parameters
        ----------
        batch:
            The examples.
        unique_keys:
            **Sorted** unique keys covering every key in ``batch``.
        emb_values:
            ``(len(unique_keys), dim)`` embedding table rows.
        flat_idx:
            Optional precomputed positions of ``batch.keys`` inside
            ``unique_keys`` (the plan builder's ``MinibatchPlan.emb_idx``);
            skips the per-minibatch ``searchsorted`` and its validation.
        """
        unique_keys = as_keys(unique_keys)
        if emb_values.shape != (unique_keys.size, self.dim):
            raise ValueError("emb_values shape mismatch")
        if flat_idx is None:
            flat_idx = unique_keys.searchsorted(batch.keys)
            if flat_idx.size and (
                flat_idx.max() >= unique_keys.size
                or np.any(unique_keys[flat_idx] != batch.keys)
            ):
                raise KeyError("batch references keys missing from unique_keys")
        rows, slots, n = self._slot_of_positions(batch)
        comp = rows * self.n_slots + slots
        out = _scatter_add(comp, emb_values[flat_idx], n * self.n_slots, self.dim)
        self._cache = (flat_idx, rows, slots, unique_keys.size)
        return out.reshape(n, self.out_dim)

    def backward(
        self, grad_features: np.ndarray, unique_keys: np.ndarray
    ) -> EmbeddingGradient:
        """Scatter the feature gradient back onto the unique keys."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        flat_idx, rows, slots, n_unique = self._cache
        if n_unique != unique_keys.shape[0]:
            raise ValueError("unique_keys changed between forward and backward")
        g3 = grad_features.reshape(-1, self.n_slots, self.dim)
        grads = _scatter_add(flat_idx, g3[rows, slots], n_unique, self.dim)
        return EmbeddingGradient(as_keys(unique_keys), grads)
