"""The CTR prediction network (paper Figure 1).

``CTRModel`` ties the sparse embedding layer to the dense MLP tower and
exposes a ``train_minibatch`` that consumes a minibatch plus the embedding
values pulled from the parameter server, and emits the sparse gradient to
push back — exactly the worker-side contract of Algorithm 1 lines 12–14.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import ModelSpec
from repro.data.batching import Batch
from repro.nn.embedding import EmbeddingGradient, EmbeddingLayer
from repro.nn.layers import MLP
from repro.nn.loss import bce_with_logits, sigmoid

__all__ = ["CTRModel", "MinibatchResult"]


@dataclass(frozen=True)
class MinibatchResult:
    """Outcome of one worker minibatch step."""

    loss: float
    probs: np.ndarray
    sparse_grad: EmbeddingGradient
    n_examples: int


class CTRModel:
    """Embedding + MLP CTR network with explicit fwd/bwd plumbing.

    The sparse embedding table is *not* owned by the model — values are
    provided per-minibatch by the caller (the HBM-PS pull), and gradients
    are handed back for the push.  The dense tower is owned locally and
    synchronized across workers by the all-reduce, as in Appendix C.4.
    """

    def __init__(self, spec: ModelSpec, *, seed: int = 0) -> None:
        self.spec = spec
        self.embedding = EmbeddingLayer(spec.n_slots, spec.embedding_dim)
        self.mlp = MLP(self.embedding.out_dim, spec.hidden_layers, seed=seed)

    # ------------------------------------------------------------------
    def forward(
        self,
        batch: Batch,
        unique_keys: np.ndarray,
        emb_values: np.ndarray,
        *,
        flat_idx: np.ndarray | None = None,
    ) -> np.ndarray:
        """Logits for ``batch``."""
        feats = self.embedding.forward(
            batch, unique_keys, emb_values, flat_idx=flat_idx
        )
        return self.mlp.forward(feats)

    def predict_proba(
        self, batch: Batch, unique_keys: np.ndarray, emb_values: np.ndarray
    ) -> np.ndarray:
        """Click probabilities for ``batch`` (no gradient bookkeeping)."""
        return sigmoid(self.forward(batch, unique_keys, emb_values))

    def train_minibatch(
        self,
        batch: Batch,
        unique_keys: np.ndarray,
        emb_values: np.ndarray,
        *,
        flat_idx: np.ndarray | None = None,
    ) -> MinibatchResult:
        """One forward/backward pass.

        Dense gradients are left in the layers (read via
        ``self.mlp.gradients()``); the sparse gradient is returned for the
        HBM-PS push.
        """
        logits = self.forward(batch, unique_keys, emb_values, flat_idx=flat_idx)
        loss, probs, grad_logit = bce_with_logits(logits, batch.labels)
        grad_feats = self.mlp.backward(grad_logit)
        sparse_grad = self.embedding.backward(grad_feats, unique_keys)
        return MinibatchResult(loss, probs, sparse_grad, batch.n_examples)

    # ------------------------------------------------------------------
    @property
    def n_dense_params(self) -> int:
        return self.mlp.n_params

    def dense_state(self) -> list[np.ndarray]:
        return self.mlp.get_state()

    def load_dense_state(self, state: list[np.ndarray]) -> None:
        self.mlp.set_state(state)
