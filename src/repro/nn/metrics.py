"""Evaluation metrics.

AUC (area under the ROC curve) is the paper's sole quality measure — CTR
revenue is so sensitive to it that a 0.1% drop is unacceptable (Section 2).
Implemented via the Mann–Whitney U statistic with average ranks for ties,
which is exact and O(n log n).
"""

from __future__ import annotations

import numpy as np

__all__ = ["auc", "log_loss"]


def auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Exact ROC AUC.

    Parameters
    ----------
    labels:
        Binary array (0/1).
    scores:
        Real-valued predictions; higher means more likely positive.
    """
    labels = np.asarray(labels, dtype=np.float64).ravel()
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same shape")
    if labels.size == 0:
        raise ValueError("cannot compute AUC of empty arrays")
    pos = labels > 0.5
    n_pos = int(pos.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("AUC undefined with a single class")
    ranks = _average_ranks(scores)
    u = ranks[pos].sum() - n_pos * (n_pos + 1) / 2.0
    return float(u / (n_pos * n_neg))


def _average_ranks(x: np.ndarray) -> np.ndarray:
    """1-based ranks with ties sharing their average rank."""
    order = np.argsort(x, kind="mergesort")
    ranks = np.empty(x.size, dtype=np.float64)
    sorted_x = x[order]
    # Group boundaries of equal values.
    boundary = np.concatenate(([True], sorted_x[1:] != sorted_x[:-1]))
    group_id = np.cumsum(boundary) - 1
    first_idx = np.flatnonzero(boundary)
    counts = np.diff(np.concatenate((first_idx, [x.size])))
    avg = first_idx + (counts + 1) / 2.0  # average of 1-based positions
    ranks[order] = avg[group_id]
    return ranks


def log_loss(labels: np.ndarray, probs: np.ndarray, eps: float = 1e-12) -> float:
    """Mean binary cross-entropy."""
    labels = np.asarray(labels, dtype=np.float64).ravel()
    probs = np.clip(np.asarray(probs, dtype=np.float64).ravel(), eps, 1 - eps)
    if labels.shape != probs.shape:
        raise ValueError("labels and probs must have the same shape")
    return float(-np.mean(labels * np.log(probs) + (1 - labels) * np.log(1 - probs)))
