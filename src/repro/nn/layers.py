"""Dense layers for the CTR tower.

A deliberately small autograd-free implementation: each layer exposes
``forward`` and ``backward`` and owns its parameters as NumPy arrays.  The
dense tower is tiny by construction (paper: at most a few million dense
parameters vs 10^11 sparse ones), so clarity wins over micro-optimization.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import spawn

__all__ = ["Dense", "ReLU", "Sigmoid", "MLP"]


class Dense:
    """Fully-connected layer ``y = x @ W + b``."""

    def __init__(self, in_dim: int, out_dim: int, *, seed: int = 0) -> None:
        if in_dim <= 0 or out_dim <= 0:
            raise ValueError("layer dims must be positive")
        rng = spawn(seed, "dense", in_dim, out_dim)
        scale = np.sqrt(2.0 / in_dim)
        self.W = rng.normal(0.0, scale, size=(in_dim, out_dim)).astype(np.float32)
        self.b = np.zeros(out_dim, dtype=np.float32)
        self._x: np.ndarray | None = None
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)

    @property
    def n_params(self) -> int:
        return self.W.size + self.b.size

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.W + self.b

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.dW = self._x.T @ grad_out
        self.db = grad_out.sum(axis=0)
        return grad_out @ self.W.T

    def parameters(self) -> list[np.ndarray]:
        return [self.W, self.b]

    def gradients(self) -> list[np.ndarray]:
        return [self.dW, self.db]


class ReLU:
    """Elementwise rectifier."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._mask


class Sigmoid:
    """Elementwise logistic function (numerically stable)."""

    def __init__(self) -> None:
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.empty_like(x, dtype=np.float64)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        self._y = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._y * (1.0 - self._y)


class MLP:
    """ReLU tower ending in a single logit."""

    def __init__(self, in_dim: int, hidden: tuple[int, ...], *, seed: int = 0):
        dims = [in_dim, *hidden, 1]
        self.layers: list = []
        for i, (a, b) in enumerate(zip(dims[:-1], dims[1:])):
            self.layers.append(Dense(a, b, seed=seed + i))
            if i < len(dims) - 2:
                self.layers.append(ReLU())

    @property
    def n_params(self) -> int:
        return sum(l.n_params for l in self.layers if isinstance(l, Dense))

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x[:, 0]

    def backward(self, grad_logit: np.ndarray) -> np.ndarray:
        g = grad_logit[:, None]
        for layer in reversed(self.layers):
            g = layer.backward(g)
        return g

    def dense_layers(self) -> list[Dense]:
        return [l for l in self.layers if isinstance(l, Dense)]

    def parameters(self) -> list[np.ndarray]:
        return [p for l in self.dense_layers() for p in l.parameters()]

    def gradients(self) -> list[np.ndarray]:
        return [g for l in self.dense_layers() for g in l.gradients()]

    def get_state(self) -> list[np.ndarray]:
        """Copies of all dense parameters (for sync / checkpoint)."""
        return [p.copy() for p in self.parameters()]

    def set_state(self, state: list[np.ndarray]) -> None:
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError("state length mismatch")
        for p, s in zip(params, state):
            if p.shape != s.shape:
                raise ValueError("state shape mismatch")
            p[...] = s

    def state_dict(self) -> dict[str, np.ndarray]:
        """Named parameter copies (``layer<i>.W`` / ``layer<i>.b``).

        The names are stable across processes, so a checkpoint shard can
        store them flat (e.g. in an ``.npz``) and a restore can detect a
        tower-shape mismatch by key set rather than by position.
        """
        out: dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.dense_layers()):
            out[f"layer{i}.W"] = layer.W.copy()
            out[f"layer{i}.b"] = layer.b.copy()
        return out

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        expected = {
            name
            for i in range(len(self.dense_layers()))
            for name in (f"layer{i}.W", f"layer{i}.b")
        }
        if set(state) != expected:
            raise ValueError(
                f"dense state keys {sorted(state)} do not match the tower "
                f"layout {sorted(expected)}"
            )
        for i, layer in enumerate(self.dense_layers()):
            for attr, name in (("W", f"layer{i}.W"), ("b", f"layer{i}.b")):
                p = getattr(layer, attr)
                s = np.asarray(state[name], dtype=p.dtype)
                if p.shape != s.shape:
                    raise ValueError(f"state shape mismatch for {name}")
                p[...] = s
