"""Binary cross-entropy on logits, with the fused stable gradient."""

from __future__ import annotations

import numpy as np

__all__ = ["bce_with_logits", "sigmoid"]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def bce_with_logits(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray, np.ndarray]:
    """Loss, per-example probabilities, and d(loss)/d(logit).

    The gradient is the classic fused form ``(p - y) / n``, which avoids the
    catastrophic cancellation of computing ``log`` and its derivative
    separately.
    """
    logits = np.asarray(logits, dtype=np.float64).ravel()
    labels = np.asarray(labels, dtype=np.float64).ravel()
    if logits.shape != labels.shape:
        raise ValueError("logits and labels must have the same shape")
    n = logits.size
    if n == 0:
        raise ValueError("empty loss input")
    p = sigmoid(logits)
    # log(1 + exp(-|x|)) form is stable for both signs.
    loss = float(
        np.mean(np.maximum(logits, 0) - logits * labels + np.log1p(np.exp(-np.abs(logits))))
    )
    grad = (p - labels) / n
    return loss, p, grad
