"""Optimizers.

The sparse side is unusual: embedding parameters live in the parameter
server as opaque fixed-width float32 *values*, so sparse optimizer state
(e.g. the Adagrad accumulator) must travel with the value.  A
:class:`SparseOptimizer` therefore defines the value layout
(``value_dim`` floats per key = embedding ``dim`` + state) and transforms
``(old_value, grad) -> new_value`` for a batch of keys at once.

Dense parameters are plain arrays updated in place.
"""

from __future__ import annotations

import numpy as np

from repro.utils.keys import as_keys, splitmix64

__all__ = [
    "SparseOptimizer",
    "SparseSGD",
    "SparseAdagrad",
    "DenseOptimizer",
    "DenseSGD",
    "DenseAdagrad",
]


class SparseOptimizer:
    """Interface for optimizers over PS-resident sparse values."""

    def __init__(self, dim: int, lr: float) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.dim = dim
        self.lr = lr

    def spec(self) -> dict:
        """Identity of this optimizer for checkpoint manifests.

        Sparse optimizer *state* travels inside the value payload, so the
        only thing a checkpoint must record is the value layout and the
        hyperparameters — a restore with a different optimizer would
        reinterpret the payload columns and silently corrupt training.
        """
        return {
            "type": type(self).__name__,
            "dim": self.dim,
            "lr": self.lr,
            "value_dim": self.value_dim,
        }

    @property
    def value_dim(self) -> int:
        """Total floats stored per key (embedding + optimizer state)."""
        raise NotImplementedError

    def init_values(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Fresh values for ``n`` previously-unseen keys."""
        raise NotImplementedError

    def init_for_keys(self, keys: np.ndarray, *, seed: int = 0) -> np.ndarray:
        """Deterministic per-key initialization.

        Unlike :meth:`init_values`, the result depends only on the key (and
        ``seed``), never on draw order — so a distributed trainer and a
        single-store reference initialize a key identically no matter which
        node first touches it.  Embedding coordinates are ~N(0, 0.01) via
        hashed Box–Muller; optimizer state starts at zero.
        """
        keys = as_keys(keys)
        out = np.zeros((keys.size, self.value_dim), dtype=np.float32)
        if keys.size == 0:
            return out
        base = splitmix64(keys ^ np.uint64(seed & 0xFFFFFFFFFFFFFFFF))
        # One splitmix pass over an (n, 2*dim) grid — per-element math is
        # identical to hashing each (key, coordinate) pair separately, so
        # initialization stays key-deterministic across batch shapes.
        offsets = np.arange(1, 2 * self.dim + 1, dtype=np.uint64)
        with np.errstate(over="ignore"):
            h = splitmix64(base[:, None] + offsets[None, :])
        u = (h >> np.uint64(11)).astype(np.float64) / float(2**53)
        u1, u2 = u[:, 0::2], u[:, 1::2]
        z = np.sqrt(-2.0 * np.log(np.clip(u1, 1e-300, None))) * np.cos(
            2.0 * np.pi * u2
        )
        out[:, : self.dim] = (0.01 * z).astype(np.float32)
        return out

    def embedding(self, values: np.ndarray) -> np.ndarray:
        """Embedding slice of the value payload."""
        return values[:, : self.dim]

    def apply(self, values: np.ndarray, grads: np.ndarray) -> np.ndarray:
        """New values after applying ``grads`` (does not mutate input)."""
        raise NotImplementedError


class SparseSGD(SparseOptimizer):
    """Stateless SGD: value == embedding."""

    @property
    def value_dim(self) -> int:
        return self.dim

    def init_values(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.normal(0.0, 0.01, size=(n, self.dim)).astype(np.float32)

    def apply(self, values: np.ndarray, grads: np.ndarray) -> np.ndarray:
        if values.shape != grads.shape:
            raise ValueError("value/grad shape mismatch")
        return (values - self.lr * grads).astype(np.float32)


class SparseAdagrad(SparseOptimizer):
    """Per-coordinate Adagrad; accumulator stored alongside the embedding.

    This mirrors production CTR training, where Adagrad-family sparse
    optimizers are standard and their state is part of the ~36–48 B/key
    payload implied by the paper's Table 3 sizes.
    """

    def __init__(self, dim: int, lr: float, eps: float = 1e-6) -> None:
        super().__init__(dim, lr)
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.eps = eps

    def spec(self) -> dict:
        out = super().spec()
        out["eps"] = self.eps
        return out

    @property
    def value_dim(self) -> int:
        return 2 * self.dim

    def init_values(self, n: int, rng: np.random.Generator) -> np.ndarray:
        out = np.zeros((n, self.value_dim), dtype=np.float32)
        out[:, : self.dim] = rng.normal(0.0, 0.01, size=(n, self.dim))
        return out

    def apply(self, values: np.ndarray, grads: np.ndarray) -> np.ndarray:
        if values.shape[1] != self.value_dim or grads.shape[1] != self.dim:
            raise ValueError("value/grad width mismatch")
        if values.shape[0] != grads.shape[0]:
            raise ValueError("value/grad length mismatch")
        emb = values[:, : self.dim].astype(np.float64)
        acc = values[:, self.dim :].astype(np.float64)
        acc = acc + grads**2
        emb = emb - self.lr * grads / (np.sqrt(acc) + self.eps)
        return np.hstack([emb, acc]).astype(np.float32)


class DenseOptimizer:
    """Interface for in-place dense parameter updates."""

    def __init__(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        raise NotImplementedError

    def spec(self) -> dict:
        """Identity of this optimizer for checkpoint manifests."""
        return {"type": type(self).__name__, "lr": self.lr}

    def get_state(self) -> list[np.ndarray]:
        """Copies of the optimizer's accumulator arrays (may be empty)."""
        return []

    def set_state(self, state: list[np.ndarray]) -> None:
        """Restore accumulators saved by :meth:`get_state`."""
        if state:
            raise ValueError(f"{type(self).__name__} carries no state")


class DenseSGD(DenseOptimizer):
    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if len(params) != len(grads):
            raise ValueError("params/grads length mismatch")
        for p, g in zip(params, grads):
            p -= (self.lr * g).astype(p.dtype)


class DenseAdagrad(DenseOptimizer):
    def __init__(self, lr: float, eps: float = 1e-6) -> None:
        super().__init__(lr)
        self.eps = eps
        self._acc: list[np.ndarray] | None = None

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if len(params) != len(grads):
            raise ValueError("params/grads length mismatch")
        if self._acc is None:
            self._acc = [np.zeros_like(p, dtype=np.float64) for p in params]
        for p, g, a in zip(params, grads, self._acc):
            a += g.astype(np.float64) ** 2
            p -= (self.lr * g / (np.sqrt(a) + self.eps)).astype(p.dtype)

    def spec(self) -> dict:
        out = super().spec()
        out["eps"] = self.eps
        return out

    def get_state(self) -> list[np.ndarray]:
        return [a.copy() for a in self._acc] if self._acc is not None else []

    def set_state(self, state: list[np.ndarray]) -> None:
        if not state:
            self._acc = None
            return
        self._acc = [np.asarray(a, dtype=np.float64).copy() for a in state]
