"""Model and cluster configuration.

:class:`ModelSpec` carries the paper's Table 3 verbatim (models A–E) plus
scaled-down variants that actually run on a laptop.  :class:`ClusterConfig`
describes the simulated deployment (nodes, GPUs per node, batch sharding).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "ModelSpec",
    "ClusterConfig",
    "PAPER_MODELS",
    "scaled_model",
    "TINY_MODEL",
]


@dataclass(frozen=True)
class ModelSpec:
    """Specification of one CTR model (paper Table 3).

    Attributes
    ----------
    name:
        Model identifier (``"A"`` … ``"E"`` for the paper's models).
    nonzeros_per_example:
        Average number of non-zero sparse features per example
        (paper column ``#Non-zeros``).
    n_sparse:
        Size of the sparse feature key space (paper column ``#Sparse``).
    n_dense:
        Number of dense (fully-connected) parameters (paper ``#Dense``).
    size_gb:
        Total parameter size in GB (paper ``Size (GB)``).
    mpi_nodes:
        Number of CPU-only nodes Baidu used to train this model on the MPI
        cluster (paper ``MPI``) — used for the cost-normalized speedup.
    embedding_dim:
        Width of each sparse parameter's embedding vector.  The paper does
        not publish this; the per-key value payload implied by
        ``size_gb / n_sparse`` is ~36–48 bytes, consistent with a dim-8–12
        float32 embedding — we default to 8 for functional runs.
    hidden_layers:
        Fully-connected layer widths above the embedding concat.
    """

    name: str
    nonzeros_per_example: int
    n_sparse: int
    n_dense: int
    size_gb: float
    mpi_nodes: int
    embedding_dim: int = 8
    hidden_layers: tuple[int, ...] = (64, 32)
    n_slots: int = 10

    def __post_init__(self) -> None:
        if self.nonzeros_per_example <= 0:
            raise ValueError("nonzeros_per_example must be positive")
        if self.n_sparse <= 0 or self.n_dense <= 0:
            raise ValueError("parameter counts must be positive")
        if self.n_slots <= 0:
            raise ValueError("n_slots must be positive")

    @property
    def bytes_per_sparse_param(self) -> float:
        """Value payload per sparse key implied by the model size."""
        return self.size_gb * 1e9 / self.n_sparse


#: Paper Table 3, verbatim.
PAPER_MODELS: dict[str, ModelSpec] = {
    "A": ModelSpec("A", 100, int(8e9), int(7e5), 300.0, 100),
    "B": ModelSpec("B", 100, int(2e10), int(2e4), 600.0, 80),
    "C": ModelSpec("C", 500, int(6e10), int(2e6), 2_000.0, 75),
    "D": ModelSpec("D", 500, int(1e11), int(4e6), 6_000.0, 150),
    "E": ModelSpec("E", 500, int(2e11), int(7e6), 10_000.0, 128),
}


def scaled_model(
    name: str,
    *,
    scale: float = 1e-6,
    embedding_dim: int = 8,
    hidden_layers: tuple[int, ...] = (32, 16),
) -> ModelSpec:
    """A laptop-scale functional variant of a paper model.

    ``scale`` multiplies the sparse key space; nonzeros per example are
    scaled with a gentler factor so batches stay realistically sparse.
    """
    base = PAPER_MODELS[name]
    n_sparse = max(1_000, int(base.n_sparse * scale))
    nnz = max(5, base.nonzeros_per_example // 10)
    return replace(
        base,
        n_sparse=n_sparse,
        nonzeros_per_example=nnz,
        n_dense=sum(hidden_layers) * 8,
        embedding_dim=embedding_dim,
        hidden_layers=hidden_layers,
    )


#: A minimal spec used throughout the unit tests.
TINY_MODEL = ModelSpec(
    name="tiny",
    nonzeros_per_example=8,
    n_sparse=5_000,
    n_dense=1_000,
    size_gb=0.001,
    mpi_nodes=10,
    embedding_dim=4,
    hidden_layers=(16, 8),
    n_slots=4,
)


@dataclass(frozen=True)
class ClusterConfig:
    """Deployment shape of the hierarchical parameter server.

    The paper's flagship deployment is 4 nodes × 8 GPUs.  ``batch_size`` is
    the HDFS batch (paper: ~4M examples); each batch is sharded into
    ``minibatches_per_gpu`` minibatches per GPU worker.
    """

    n_nodes: int = 4
    gpus_per_node: int = 8
    batch_size: int = 4_000_000
    minibatches_per_gpu: int = 4
    mem_capacity_params: int = 10**9
    hbm_capacity_params: int = 10**8
    ssd_file_capacity: int = 2**16
    cache_lru_fraction: float = 0.5
    compaction_threshold: float = 2.0
    compaction_stale_fraction: float = 0.5
    #: resolve each round's full MEM working set (local partition,
    #: peer-served partitions, owner-queue keys) in one dedicated
    #: pipeline stage before prepare, pinning it for the round; requires
    #: planned execution (``HPSCluster(use_plan=True)``)
    prefetch: bool = False
    #: lookahead window of the prefetch stage in rounds: round ``b``'s
    #: prefetch resolves and pins the unions of rounds ``b..b+depth-1``
    #: (1 = today's next-round-only behavior, bit-identical to it).
    #: Depth > 1 requires ``prefetch=True``; the deep rounds pay only
    #: the union *delta* against the already-resolved window.
    prefetch_depth: int = 1
    #: ceiling on the LRU-tier fraction the prefetch window may pin —
    #: a deep-round delta that would push pins past this backs the
    #: window off to a shallower depth for that round (counted in
    #: ``BatchStats.prefetch_depth_backoffs``) so admission never
    #: starves behind speculative pins
    prefetch_pin_fraction: float = 0.8
    #: SSD extent cache: parameter-file payloads kept hot so repeat
    #: miss-path reads of the same file pay the cheap warm rate instead
    #: of a device read (0 disables; see
    #: :class:`~repro.ssd.extent_cache.FileHandleCache`).  On by default
    #: since hits are priced (warm ≠ free), so enabling it does not fork
    #: the sim-seconds parity groups.
    ssd_extent_cache_files: int = 16
    #: self-tuning extent cache: when > 0, every ``…_resize_every``
    #: device-path file touches the cache re-sizes itself toward the
    #: observed file-reuse distance, clamped to
    #: [``ssd_extent_cache_min_files``, ``ssd_extent_cache_max_files``]
    #: (0 keeps the capacity fixed at ``ssd_extent_cache_files``)
    ssd_extent_cache_resize_every: int = 0
    ssd_extent_cache_min_files: int = 4
    ssd_extent_cache_max_files: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_nodes <= 0 or self.gpus_per_node <= 0:
            raise ValueError("cluster must have at least one node and GPU")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.ssd_extent_cache_files < 0:
            raise ValueError("ssd_extent_cache_files must be >= 0")
        if not 0.0 <= self.cache_lru_fraction <= 1.0:
            raise ValueError("cache_lru_fraction must be in [0, 1]")
        if self.compaction_threshold < 1.0:
            raise ValueError("compaction_threshold must be >= 1.0")
        if not 0.0 < self.compaction_stale_fraction <= 1.0:
            raise ValueError("compaction_stale_fraction must be in (0, 1]")
        if self.prefetch_depth < 1:
            raise ValueError("prefetch_depth must be >= 1")
        if self.prefetch_depth > 1 and not self.prefetch:
            raise ValueError("prefetch_depth > 1 requires prefetch=True")
        if not 0.0 < self.prefetch_pin_fraction <= 1.0:
            raise ValueError("prefetch_pin_fraction must be in (0, 1]")
        if self.ssd_extent_cache_resize_every < 0:
            raise ValueError("ssd_extent_cache_resize_every must be >= 0")
        if self.ssd_extent_cache_resize_every > 0 and not (
            0
            < self.ssd_extent_cache_min_files
            <= self.ssd_extent_cache_max_files
        ):
            raise ValueError(
                "adaptive extent cache needs 0 < min_files <= max_files"
            )

    @property
    def total_gpus(self) -> int:
        return self.n_nodes * self.gpus_per_node

    @property
    def minibatches_per_batch(self) -> int:
        return self.total_gpus * self.minibatches_per_gpu

    def with_nodes(self, n_nodes: int) -> "ClusterConfig":
        """Copy of this config with a different node count."""
        return replace(self, n_nodes=n_nodes)
