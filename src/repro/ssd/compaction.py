"""File compaction (paper Section 6, Appendix E).

Disk usage grows as every dump creates new files and strands stale rows in
old ones.  A background thread (here: an explicitly invoked step, so tests
and the pipeline stay deterministic) checks the usage and, past a
threshold, merges files that are **more than 50% stale** into fresh files,
erasing the originals.

The 50% victim rule gives the paper's bound: live data can at most double
on disk (1 / 0.5 = 2×).  Stale fractions come from the per-file counters —
no file contents are read to make the decision.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ssd.file_store import FileStore

__all__ = ["Compactor", "CompactionStats"]


@dataclass(frozen=True)
class CompactionStats:
    """Outcome of one compaction check."""

    triggered: bool
    files_merged: int
    files_created: int
    bytes_read: int
    bytes_written: int
    seconds: float


class Compactor:
    """Usage-threshold-triggered merger of mostly-stale parameter files.

    Parameters
    ----------
    store:
        The file store to compact.
    usage_threshold:
        Compaction triggers when ``total_bytes > usage_threshold *
        live_bytes``.  The paper bounds usage at 2× live, so the default
        threshold sits below that.
    stale_fraction:
        Only files at least this stale are merged (paper: 0.5).
    """

    def __init__(
        self,
        store: FileStore,
        *,
        usage_threshold: float = 1.6,
        stale_fraction: float = 0.5,
    ) -> None:
        if usage_threshold < 1.0:
            raise ValueError("usage_threshold must be >= 1.0")
        if not 0.0 < stale_fraction <= 1.0:
            raise ValueError("stale_fraction must be in (0, 1]")
        self.store = store
        self.usage_threshold = usage_threshold
        self.stale_fraction = stale_fraction
        self.total_compactions = 0

    # ------------------------------------------------------------------
    def should_compact(self) -> bool:
        live = self.store.live_bytes
        if live == 0:
            return self.store.total_bytes > 0
        return self.store.total_bytes > self.usage_threshold * live

    def victims(self):
        """Files eligible for merging, most-stale first."""
        out = [
            f
            for f in self.store.files()
            if f.stale_fraction() >= self.stale_fraction
        ]
        out.sort(key=lambda f: f.stale_fraction(), reverse=True)
        return out

    def compact(self) -> CompactionStats:
        """Run one compaction check (no-op when below threshold)."""
        if not self.should_compact():
            return CompactionStats(False, 0, 0, 0, 0, 0.0)
        victims = self.victims()
        if not victims:
            return CompactionStats(False, 0, 0, 0, 0, 0.0)

        seconds = 0.0
        bytes_read = 0
        live_keys = []
        live_vals = []
        for f in victims:
            # Read the whole victim file, keep its live rows.
            seconds += self.store.device.read(self.store.file_bytes(f))
            bytes_read += self.store.file_bytes(f)
            k, v = self.store.live_rows(f)
            if k.size:
                live_keys.append(k)
                live_vals.append(v)

        files_created = 0
        bytes_written = 0
        if live_keys:
            keys = np.concatenate(live_keys)
            vals = np.concatenate(live_vals)
            # A key can be live in at most one victim (the mapping points to
            # exactly one file), so keys are unique by construction.
            t_write, new_ids = self.store.write(keys, vals)
            seconds += t_write
            files_created = len(new_ids)
            bytes_written = sum(
                self.store.file_bytes(self.store._files[fid]) for fid in new_ids
            )
        for f in victims:
            self.store.erase(f.file_id)
        self.total_compactions += 1
        return CompactionStats(
            True, len(victims), files_created, bytes_read, bytes_written, seconds
        )
