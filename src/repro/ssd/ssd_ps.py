"""SSD-PS facade — the bottom layer of the hierarchy (paper Section 6).

Couples the append-only :class:`~repro.ssd.file_store.FileStore` with the
:class:`~repro.ssd.compaction.Compactor`.  The MEM-PS calls :meth:`load`
when its cache misses and :meth:`dump` when evicting; every dump runs one
compaction check, standing in for the paper's background thread while
keeping the simulation deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.ledger import CostLedger
from repro.hardware.specs import SSDSpec
from repro.ssd.compaction import CompactionStats, Compactor
from repro.ssd.file_store import FileStore, ReadResult

__all__ = ["SSDPS", "SSDBatchStats"]


@dataclass(frozen=True)
class SSDBatchStats:
    """I/O accounting for one load or dump call."""

    seconds: float
    compaction: CompactionStats | None = None

    @property
    def total_seconds(self) -> float:
        extra = self.compaction.seconds if self.compaction else 0.0
        return self.seconds + extra


class SSDPS:
    """Materialized-parameter server on one node's SSD array."""

    def __init__(
        self,
        value_dim: int,
        *,
        file_capacity: int = 2**16,
        ssd_spec: SSDSpec | None = None,
        usage_threshold: float = 1.6,
        stale_fraction: float = 0.5,
        directory: str | None = None,
        ledger: CostLedger | None = None,
    ) -> None:
        self.ledger = ledger if ledger is not None else CostLedger()
        self.store = FileStore(
            value_dim,
            file_capacity,
            ssd_spec=ssd_spec,
            directory=directory,
            ledger=self.ledger,
        )
        self.compactor = Compactor(
            self.store,
            usage_threshold=usage_threshold,
            stale_fraction=stale_fraction,
        )
        self.load_seconds = 0.0
        self.dump_seconds = 0.0

    # ------------------------------------------------------------------
    @property
    def value_dim(self) -> int:
        return self.store.value_dim

    @property
    def n_live_params(self) -> int:
        return self.store.n_live_params

    def load(self, keys: np.ndarray) -> tuple[ReadResult, SSDBatchStats]:
        """Read values for ``keys`` (never-seen keys return found=False)."""
        result = self.store.read(keys)
        self.load_seconds += result.seconds
        return result, SSDBatchStats(result.seconds)

    def dump(self, keys: np.ndarray, values: np.ndarray) -> SSDBatchStats:
        """Write updated parameters as new files, then check compaction."""
        seconds, _ = self.store.write(keys, values)
        comp = self.compactor.compact()
        self.dump_seconds += seconds + comp.seconds
        return SSDBatchStats(seconds, comp if comp.triggered else None)

    def check_invariants(self) -> None:
        self.store.check_invariants()
