"""SSD-PS facade — the bottom layer of the hierarchy (paper Section 6).

Couples the append-only :class:`~repro.ssd.file_store.FileStore` with the
:class:`~repro.ssd.compaction.Compactor`.  The MEM-PS calls :meth:`load`
when its cache misses and :meth:`dump` when evicting; every dump runs one
compaction check, standing in for the paper's background thread while
keeping the simulation deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.ledger import CostLedger
from repro.hardware.specs import SSDSpec
from repro.ssd.compaction import CompactionStats, Compactor
from repro.ssd.file_store import FileStore, ReadResult
from repro.utils.keys import KEY_DTYPE, as_keys

__all__ = ["SSDPS", "SSDBatchStats"]


@dataclass(frozen=True)
class SSDBatchStats:
    """I/O accounting for one load or dump call."""

    seconds: float
    compaction: CompactionStats | None = None

    @property
    def total_seconds(self) -> float:
        extra = self.compaction.seconds if self.compaction else 0.0
        return self.seconds + extra


class SSDPS:
    """Materialized-parameter server on one node's SSD array."""

    def __init__(
        self,
        value_dim: int,
        *,
        file_capacity: int = 2**16,
        ssd_spec: SSDSpec | None = None,
        usage_threshold: float = 1.6,
        stale_fraction: float = 0.5,
        directory: str | None = None,
        ledger: CostLedger | None = None,
        extent_cache_files: int = 0,
        extent_cache_resize_every: int = 0,
        extent_cache_min_files: int = 1,
        extent_cache_max_files: int | None = None,
        key_domain: int | None = None,
    ) -> None:
        self.ledger = ledger if ledger is not None else CostLedger()
        self.store = FileStore(
            value_dim,
            file_capacity,
            ssd_spec=ssd_spec,
            directory=directory,
            ledger=self.ledger,
            extent_cache_files=extent_cache_files,
            extent_cache_resize_every=extent_cache_resize_every,
            extent_cache_min_files=extent_cache_min_files,
            extent_cache_max_files=extent_cache_max_files,
            key_domain=key_domain,
        )
        self.compactor = Compactor(
            self.store,
            usage_threshold=usage_threshold,
            stale_fraction=stale_fraction,
        )
        self.load_seconds = 0.0
        self.dump_seconds = 0.0
        #: reads served from the cross-round extent cache (charged the
        #: cheap warm rate instead of a device read; see
        #: :class:`~repro.ssd.extent_cache.FileHandleCache`)
        self.extent_cache_hits = 0

    # ------------------------------------------------------------------
    @property
    def value_dim(self) -> int:
        return self.store.value_dim

    @property
    def n_live_params(self) -> int:
        return self.store.n_live_params

    def load(self, keys: np.ndarray) -> tuple[ReadResult, SSDBatchStats]:
        """Read values for ``keys`` (never-seen keys return found=False).

        Extent-cache hits are accounted exactly once, here: the store's
        :class:`~repro.ssd.file_store.ReadResult` already prices hit
        files at the warm rate inside its charged ``seconds``, so this
        facade must only accumulate the result — never re-price the read
        — and every protocol face (:meth:`get_batch`, :meth:`transform`)
        goes through this method so a cache hit can never be
        double-charged.
        """
        result = self.store.read(keys)
        self.load_seconds += result.seconds
        self.extent_cache_hits += result.cache_hits
        return result, SSDBatchStats(result.seconds)

    def dump(self, keys: np.ndarray, values: np.ndarray) -> SSDBatchStats:
        """Write updated parameters as new files, then check compaction."""
        seconds, _ = self.store.write(keys, values)
        comp = self.compactor.compact()
        self.dump_seconds += seconds + comp.seconds
        return SSDBatchStats(seconds, comp if comp.triggered else None)

    # ------------------------------------------------------------------
    # ParameterStore protocol (functional surface; I/O time is still
    # charged to the ledger through load/dump underneath).
    # ------------------------------------------------------------------
    def get_batch(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Values + found mask for ``keys`` (protocol face of :meth:`load`)."""
        result, _ = self.load(keys)
        return result.values, result.found

    def put_batch(
        self, keys: np.ndarray, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Persist ``keys`` (protocol face of :meth:`dump`); the bottom
        tier never evicts, so the flush pair is always empty."""
        self.dump(keys, values)
        return (
            np.zeros(0, dtype=KEY_DTYPE),
            np.zeros((0, self.value_dim), dtype=np.float32),
        )

    def contains(self, keys: np.ndarray) -> np.ndarray:
        """Materialized-on-SSD mask (no I/O charged — mapping lookup).

        Consistent with :meth:`load` under the extent cache: membership
        comes from the mapping alone, so a key whose file happens to be
        cache-resident answers identically to one whose file is not —
        and neither touches the device or the hit counters.
        """
        return self.store.mapping_of(keys) >= 0

    def transform(self, keys: np.ndarray, fn) -> float:
        """Read-modify-write resident ``keys``; returns simulated seconds.

        ``keys`` is normalized to the canonical ``uint64`` key dtype up
        front so plain Python int lists cannot mismatch the file-store
        mapping (whose keys are always ``uint64``).
        """
        keys = as_keys(keys)
        result, stats = self.load(keys)
        if not np.all(result.found):
            missing = keys[~result.found][:5]
            raise KeyError(f"transform on absent keys, e.g. {missing.tolist()}")
        new_values = np.asarray(fn(result.values), dtype=np.float32)
        seconds = stats.total_seconds
        seconds += self.dump(keys, new_values).total_seconds
        return seconds

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """All live ``(keys, values)``, sorted by key (no I/O charged)."""
        ks, vs = [], []
        for f in self.store.files():
            k, v = self.store.live_rows(f)
            ks.append(k)
            vs.append(v)
        keys = (
            np.concatenate(ks) if ks else np.zeros(0, dtype=np.uint64)
        )
        values = (
            np.concatenate(vs, axis=0)
            if ks
            else np.zeros((0, self.value_dim), dtype=np.float32)
        )
        order = np.argsort(keys)
        return keys[order], values[order]

    def check_invariants(self) -> None:
        self.store.check_invariants()

    # ------------------------------------------------------------------
    def export_state(self) -> dict[str, np.ndarray]:
        """Snapshot the file store plus the facade's running counters.

        Restoring the exact file layout (not just the live rows) matters:
        stale fractions drive future compaction triggers, so a resumed
        run only reproduces the original run's I/O schedule if the files
        and their counters come back verbatim.
        """
        out = self.store.export_state()
        out["load_seconds"] = np.float64(self.load_seconds)
        out["dump_seconds"] = np.float64(self.dump_seconds)
        out["total_compactions"] = np.int64(self.compactor.total_compactions)
        out["extent_cache_hits"] = np.int64(self.extent_cache_hits)
        return out

    def load_state(self, state: dict[str, np.ndarray]) -> None:
        """Restore from an :meth:`export_state` snapshot."""
        self.store.load_state(state)
        self._load_counters(state)

    def export_delta(self, base: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Diff against a prior :meth:`export_state` snapshot.

        The file store diffs exactly (immutable files, monotone ids);
        the facade's running counters are scalars, so they ship in full
        with every delta.
        """
        out = self.store.export_delta(base)
        out["load_seconds"] = np.float64(self.load_seconds)
        out["dump_seconds"] = np.float64(self.dump_seconds)
        out["total_compactions"] = np.int64(self.compactor.total_compactions)
        out["extent_cache_hits"] = np.int64(self.extent_cache_hits)
        return out

    def load_delta(self, delta: dict[str, np.ndarray]) -> None:
        """Apply an :meth:`export_delta` diff on top of the base state."""
        self.store.load_delta(delta)
        self._load_counters(delta)

    def _load_counters(self, state: dict[str, np.ndarray]) -> None:
        self.load_seconds = float(state["load_seconds"])
        self.dump_seconds = float(state["dump_seconds"])
        self.compactor.total_compactions = int(state["total_compactions"])
        self.extent_cache_hits = int(state.get("extent_cache_hits", 0))
