"""Cross-round file/extent cache for the SSD miss path.

:class:`FileHandleCache` keeps the payloads of recently-read parameter
files resident across rounds, so repeated cache-miss batches that touch
the same :class:`~repro.ssd.file_store.ParameterFile` stop re-paying the
full payload-read cost every round.  The cache is bounded (``max_files``
payloads, LRU replacement) and exactly invalidated:

* ``write`` never invalidates — parameter files are immutable, new data
  always lands in *new* file ids, and a repointed mapping simply stops
  routing reads at the stale rows (the cached payload stays byte-valid
  for every key still mapped to that file);
* ``erase`` (the only operation that destroys a payload — compaction
  erases its victims through it) must drop the entry, which
  :meth:`FileStore.erase` does via :meth:`invalidate`.

A hit serves the payload at the *warm* rate — a host-DRAM copy priced by
:meth:`~repro.hardware.ssd_device.SSDDevice.read_warm`, far cheaper than
the device read it replaces but never free — so the cache can default on
(``ClusterConfig.ssd_extent_cache_files``) without forking the
sim-seconds parity groups: like-configured runs still agree bit-exactly,
and the cost model keeps an honest account of where every byte came
from.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FileHandleCache"]


class FileHandleCache:
    """Bounded LRU cache of parameter-file payloads, keyed by file id.

    ``max_files <= 0`` disables the cache entirely: every operation is a
    no-op and :meth:`get` always misses, so a disabled cache is
    bit-identical (values, found masks, *and* charged seconds) to not
    constructing one at all.
    """

    def __init__(self, max_files: int = 0) -> None:
        self.max_files = int(max_files)
        #: insertion-ordered: oldest (least recently used) first.
        self._payloads: dict[int, np.ndarray] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.max_files > 0

    def __len__(self) -> int:
        return len(self._payloads)

    def __contains__(self, file_id: int) -> bool:
        return int(file_id) in self._payloads

    # ------------------------------------------------------------------
    def get(self, file_id: int) -> np.ndarray | None:
        """Cached payload of ``file_id`` (refreshing recency), or None."""
        if not self.enabled:
            return None
        payload = self._payloads.pop(int(file_id), None)
        if payload is None:
            self.misses += 1
            return None
        # Re-insert to move to the most-recently-used end.
        self._payloads[int(file_id)] = payload
        self.hits += 1
        return payload

    def put(self, file_id: int, payload: np.ndarray) -> None:
        """Admit ``payload``; evicts the least recently used past capacity."""
        if not self.enabled:
            return
        fid = int(file_id)
        self._payloads.pop(fid, None)
        self._payloads[fid] = payload
        while len(self._payloads) > self.max_files:
            oldest = next(iter(self._payloads))
            del self._payloads[oldest]
            self.evictions += 1

    def invalidate(self, file_id: int) -> bool:
        """Drop ``file_id``'s payload (file erased); True if present."""
        if self._payloads.pop(int(file_id), None) is not None:
            self.invalidations += 1
            return True
        return False

    def clear(self) -> None:
        self._payloads.clear()

    # ------------------------------------------------------------------
    def resident_ids(self) -> list[int]:
        """Cached file ids, least recently used first."""
        return list(self._payloads)

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "resident": len(self._payloads),
        }
