"""Cross-round file/extent cache for the SSD miss path.

:class:`FileHandleCache` keeps the payloads of recently-read parameter
files resident across rounds, so repeated cache-miss batches that touch
the same :class:`~repro.ssd.file_store.ParameterFile` stop re-paying the
full payload-read cost every round.  The cache is bounded (``max_files``
payloads, LRU replacement) and exactly invalidated:

* ``write`` never invalidates — parameter files are immutable, new data
  always lands in *new* file ids, and a repointed mapping simply stops
  routing reads at the stale rows (the cached payload stays byte-valid
  for every key still mapped to that file);
* ``erase`` (the only operation that destroys a payload — compaction
  erases its victims through it) must drop the entry, which
  :meth:`FileStore.erase` does via :meth:`invalidate`.

A hit serves the payload at the *warm* rate — a host-DRAM copy priced by
:meth:`~repro.hardware.ssd_device.SSDDevice.read_warm`, far cheaper than
the device read it replaces but never free — so the cache can default on
(``ClusterConfig.ssd_extent_cache_files``) without forking the
sim-seconds parity groups: like-configured runs still agree bit-exactly,
and the cost model keeps an honest account of where every byte came
from.

Self-tuning capacity
--------------------
With ``resize_every`` > 0 the cache sizes itself to the workload instead
of trusting a hand-picked ``max_files``.  Every :meth:`get` records the
touched file's *reuse distance* — the number of file touches since that
file was last touched, tracked through a bounded ghost list so evicted
files still report distances — into a windowed histogram.  Every
``resize_every`` touches the cache re-targets its capacity at the
distance that would have caught 90 % of the window's observed reuses,
clamped to ``[min_files, max_files_limit]``, and shrinks or grows to it
(a shrink drops the coldest payloads — its price is the device-rate
re-read any of them that return will pay; a resize itself moves no
bytes and charges no seconds).  Resize events are counted
(:attr:`resizes`) and the whole tuning state — capacity, clock, ghost
list, histogram window — exports/restores through the file store's
checkpoint protocol, so a restored run replays the original run's
resize schedule exactly.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FileHandleCache"]

#: Catch this fraction of the window's observed reuses when re-targeting
#: the capacity (the q-th percentile of the reuse-distance histogram).
_REUSE_QUANTILE = 0.9

#: Ghost-list bound, as a multiple of the largest capacity the tuner may
#: pick: distances longer than any reachable capacity carry no sizing
#: signal, so the ghost list forgets them.
_GHOST_FACTOR = 4


class FileHandleCache:
    """Bounded LRU cache of parameter-file payloads, keyed by file id.

    ``max_files <= 0`` disables the cache entirely: every operation is a
    no-op and :meth:`get` always misses, so a disabled cache is
    bit-identical (values, found masks, *and* charged seconds) to not
    constructing one at all.

    ``resize_every`` > 0 turns on the self-tuning capacity described in
    the module docstring; ``min_files`` / ``max_files_limit`` bound what
    the tuner may pick (``max_files`` stays the live capacity at every
    instant — the tuner mutates it).
    """

    def __init__(
        self,
        max_files: int = 0,
        *,
        resize_every: int = 0,
        min_files: int = 1,
        max_files_limit: int | None = None,
    ) -> None:
        self.max_files = int(max_files)
        self.resize_every = int(resize_every)
        self.min_files = int(min_files)
        self.max_files_limit = int(
            max_files_limit if max_files_limit is not None else max(max_files, 1)
        )
        if self.resize_every > 0:
            if not 0 < self.min_files <= self.max_files_limit:
                raise ValueError(
                    "adaptive extent cache needs 0 < min_files <= "
                    "max_files_limit"
                )
            if not self.min_files <= self.max_files <= self.max_files_limit:
                raise ValueError(
                    "initial capacity must lie within the adaptive bounds"
                )
        #: insertion-ordered: oldest (least recently used) first.
        self._payloads: dict[int, np.ndarray] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        #: capacity re-target events taken by the tuner
        self.resizes = 0
        #: the tuner's last chosen reuse-distance target (0 = none yet)
        self.reuse_target = 0
        #: monotone file-touch clock driving the tuner
        self._clock = 0
        #: insertion-ordered ghost list: fid -> clock of last touch
        #: (spans residents *and* recently evicted files)
        self._last_touch: dict[int, int] = {}
        #: reuse distances observed since the last resize decision
        self._reuse_window: list[int] = []

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.max_files > 0

    @property
    def adaptive(self) -> bool:
        return self.enabled and self.resize_every > 0

    def __len__(self) -> int:
        return len(self._payloads)

    def __contains__(self, file_id: int) -> bool:
        return int(file_id) in self._payloads

    # ------------------------------------------------------------------
    def _record_touch(self, fid: int) -> None:
        """Advance the tuner's clock for one file touch of ``fid``."""
        last = self._last_touch.pop(fid, None)
        if last is not None:
            self._reuse_window.append(self._clock - last)
        self._last_touch[fid] = self._clock
        self._clock += 1
        ghost_cap = _GHOST_FACTOR * self.max_files_limit
        while len(self._last_touch) > ghost_cap:
            del self._last_touch[next(iter(self._last_touch))]
        if self._clock % self.resize_every == 0:
            self._retarget()

    def _retarget(self) -> None:
        """Re-size toward the window's observed reuse distances."""
        if not self._reuse_window:
            return
        window = sorted(self._reuse_window)
        self._reuse_window = []
        target = window[min(len(window) - 1, int(len(window) * _REUSE_QUANTILE))]
        self.reuse_target = int(target)
        new_cap = min(self.max_files_limit, max(self.min_files, int(target)))
        if new_cap == self.max_files:
            return
        self.max_files = new_cap
        self.resizes += 1
        # A shrink drops the coldest payloads now; their price is the
        # device-rate re-read any of them that return will pay.
        while len(self._payloads) > self.max_files:
            del self._payloads[next(iter(self._payloads))]
            self.evictions += 1

    # ------------------------------------------------------------------
    def get(self, file_id: int) -> np.ndarray | None:
        """Cached payload of ``file_id`` (refreshing recency), or None."""
        if not self.enabled:
            return None
        fid = int(file_id)
        if self.adaptive:
            self._record_touch(fid)
        payload = self._payloads.pop(fid, None)
        if payload is None:
            self.misses += 1
            return None
        # Re-insert to move to the most-recently-used end.
        self._payloads[fid] = payload
        self.hits += 1
        return payload

    def put(self, file_id: int, payload: np.ndarray) -> None:
        """Admit ``payload``; evicts the least recently used past capacity."""
        if not self.enabled:
            return
        fid = int(file_id)
        self._payloads.pop(fid, None)
        self._payloads[fid] = payload
        while len(self._payloads) > self.max_files:
            oldest = next(iter(self._payloads))
            del self._payloads[oldest]
            self.evictions += 1

    def warm(self, file_ids, payload_of) -> None:
        """Re-warm from a snapshot's LRU-ordered resident ids.

        Admits only the *newest* ``max_files`` ids — the snapshot may
        have been taken at a larger capacity (a fixed-size restore into
        a smaller store, or an adaptive cache that shrank since), and
        pushing every snapshot id through :meth:`put` would churn the
        over-capacity prefix straight through the cache, spuriously
        counting an eviction (and materializing a payload) per dropped
        id.  ``payload_of(fid)`` materializes the payload for an
        admitted id; ids the caller no longer holds must be filtered
        before calling.
        """
        if not self.enabled:
            return
        ids = [int(f) for f in file_ids]
        for fid in ids[max(0, len(ids) - self.max_files) :]:
            self.put(fid, payload_of(fid))

    def invalidate(self, file_id: int) -> bool:
        """Drop ``file_id``'s payload (file erased); True if present."""
        if self._payloads.pop(int(file_id), None) is not None:
            self.invalidations += 1
            return True
        return False

    def clear(self) -> None:
        self._payloads.clear()

    # ------------------------------------------------------------------
    def export_tuning(self) -> dict[str, np.ndarray]:
        """The tuner's replay state (capacity, clock, ghosts, window).

        Shipped with the file-store snapshot so a restored run re-takes
        the original run's resize decisions at the original touches.
        """
        ghost_fids = np.asarray(list(self._last_touch), dtype=np.int64)
        ghost_clocks = np.asarray(
            list(self._last_touch.values()), dtype=np.int64
        )
        return {
            "capacity": np.int64(self.max_files),
            "resizes": np.int64(self.resizes),
            "reuse_target": np.int64(self.reuse_target),
            "clock": np.int64(self._clock),
            "ghost_fids": ghost_fids,
            "ghost_clocks": ghost_clocks,
            "reuse_window": np.asarray(self._reuse_window, dtype=np.int64),
        }

    def load_tuning(self, state: dict[str, np.ndarray]) -> None:
        """Restore :meth:`export_tuning` state (adaptive caches only)."""
        self.max_files = int(state["capacity"])
        self.resizes = int(state["resizes"])
        self.reuse_target = int(state["reuse_target"])
        self._clock = int(state["clock"])
        self._last_touch = {
            int(f): int(c)
            for f, c in zip(state["ghost_fids"], state["ghost_clocks"])
        }
        self._reuse_window = [int(d) for d in state["reuse_window"]]

    # ------------------------------------------------------------------
    def resident_ids(self) -> list[int]:
        """Cached file ids, least recently used first."""
        return list(self._payloads)

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "resident": len(self._payloads),
            "capacity": self.max_files,
            "resizes": self.resizes,
            "reuse_target": self.reuse_target,
        }
