"""File-level parameter storage (paper Section 6, Appendix E).

Parameters are materialized in immutable *parameter files*; an in-memory
parameter→file mapping locates them.  Updates never touch old files —
updated values are chunked into **new** files (sequential writes), the
mapping is repointed, and superseded rows become *stale*.  A per-file stale
counter (maintained exactly as the paper describes: bumped when the mapping
is repointed away) lets the compactor pick merge victims without reading
file contents.

Two backends: ``memory`` (default — file payloads held as NumPy arrays) and
``disk`` (payloads written as ``.npy`` files in a directory, for tests that
want real I/O).  Timing always comes from the :class:`SSDDevice` model.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass

import numpy as np

from repro.faults.errors import PayloadLostError
from repro.hardware.ledger import CostLedger
from repro.hardware.specs import SSDSpec
from repro.hardware.ssd_device import SSDDevice
from repro.ssd.extent_cache import FileHandleCache
from repro.store.slot_index import SlotIndex
from repro.utils.io import atomic_write_bytes
from repro.utils.keys import KEY_DTYPE, as_keys

__all__ = ["FileStore", "ParameterFile", "ReadResult"]


@dataclass
class ParameterFile:
    """One immutable on-SSD parameter file."""

    file_id: int
    keys: np.ndarray  # sorted unique keys stored in this file
    stale_count: int = 0
    #: memory backend: the payload rows, aligned with ``keys``.
    values: np.ndarray | None = None
    #: disk backend: path of the .npy payload.
    path: str | None = None

    @property
    def n_params(self) -> int:
        return int(self.keys.size)

    @property
    def n_live(self) -> int:
        return self.n_params - self.stale_count

    def stale_fraction(self) -> float:
        return self.stale_count / self.n_params if self.n_params else 1.0


@dataclass(frozen=True)
class ReadResult:
    """Outcome of a batched read.

    ``files_read``/``bytes_read`` count what was actually charged to the
    device; ``cache_hits`` counts the touched files served from the
    :class:`~repro.ssd.extent_cache.FileHandleCache` instead, each
    charged the cheap warm (host-DRAM copy) rate rather than a device
    read.
    """

    values: np.ndarray
    found: np.ndarray
    seconds: float
    files_read: int
    bytes_read: int
    cache_hits: int = 0


class FileStore:
    """Append-only parameter-file store with key→file mapping."""

    def __init__(
        self,
        value_dim: int,
        file_capacity: int,
        *,
        ssd_spec: SSDSpec | None = None,
        directory: str | None = None,
        ledger: CostLedger | None = None,
        extent_cache_files: int = 0,
        extent_cache_resize_every: int = 0,
        extent_cache_min_files: int = 1,
        extent_cache_max_files: int | None = None,
        key_domain: int | None = None,
    ) -> None:
        if value_dim <= 0:
            raise ValueError("value_dim must be positive")
        if file_capacity <= 0:
            raise ValueError("file_capacity must be positive")
        self.value_dim = value_dim
        self.file_capacity = file_capacity
        self.ledger = ledger if ledger is not None else CostLedger()
        self.device = SSDDevice(ssd_spec or SSDSpec(), self.ledger)
        #: cross-round payload cache; disabled (0 capacity) by default so
        #: charged seconds stay identical to the pre-cache behaviour.
        #: With ``extent_cache_resize_every`` > 0 the cache self-tunes
        #: its capacity to the observed file-reuse distances.
        self.extent_cache = FileHandleCache(
            extent_cache_files,
            resize_every=extent_cache_resize_every,
            min_files=extent_cache_min_files,
            max_files_limit=extent_cache_max_files,
        )
        #: fault-injection guard for cold file reads
        #: (:class:`repro.faults.policy.FaultArm`; None = fault-free)
        self.faults = None
        self.directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        self._files: dict[int, ParameterFile] = {}
        self._key_domain = key_domain
        #: vectorized key -> file_id mapping (batch-first store layer).
        self._mapping = SlotIndex(1024, key_domain=key_domain)
        self._next_file_id = 0
        #: incrementally maintained disk footprint (updated on write and
        #: erase) — the compactor polls ``total_bytes`` on every dump, so
        #: recomputing it as a sum over all files would be O(files) per
        #: check.
        self._total_bytes = 0

    # ------------------------------------------------------------------
    @property
    def n_files(self) -> int:
        return len(self._files)

    @property
    def n_live_params(self) -> int:
        return len(self._mapping)

    def file_bytes(self, f: ParameterFile) -> int:
        return f.n_params * (8 + 4 * self.value_dim)

    @property
    def total_bytes(self) -> int:
        """Disk footprint including stale rows (maintained incrementally)."""
        return self._total_bytes

    @property
    def live_bytes(self) -> int:
        return self.n_live_params * (8 + 4 * self.value_dim)

    def files(self) -> list[ParameterFile]:
        return list(self._files.values())

    def mapping_of(self, keys: np.ndarray) -> np.ndarray:
        """File id per key (-1 if unmapped), vectorized."""
        fids, _ = self._mapping.get(as_keys(keys))
        return fids

    # ------------------------------------------------------------------
    def _payload(self, f: ParameterFile) -> np.ndarray:
        if f.values is not None:
            return f.values
        assert f.path is not None
        return np.load(f.path)

    def _store_payload(self, f: ParameterFile, values: np.ndarray) -> None:
        """Persist a file's payload; durable before it becomes visible.

        The disk backend writes to a temp file, fsyncs, and ``os.replace``s
        into the final name, so an interrupted write can never leave a
        truncated ``.npy`` under the path the mapping will point at —
        ``f.path`` (and with it the caller's mapping repoint) is only set
        once the payload is fully on disk.
        """
        if self.directory is None:
            f.values = values
            return
        path = os.path.join(self.directory, f"params_{f.file_id:08d}.npy")
        buf = io.BytesIO()
        np.save(buf, values)
        atomic_write_bytes(path, buf.getvalue())
        f.path = path

    # ------------------------------------------------------------------
    def write(self, keys: np.ndarray, values: np.ndarray) -> tuple[float, list[int]]:
        """Chunk (keys, values) into new files; returns (seconds, file ids).

        Keys must be unique.  Previously mapped keys leave a stale row
        behind in their old file (with its counter bumped); the mapping is
        repointed to the new file.  Writes are sequential, as in the paper.
        """
        keys = as_keys(keys)
        values = np.asarray(values, dtype=np.float32)
        if values.shape != (keys.size, self.value_dim):
            raise ValueError("values shape mismatch")
        if keys.size == 0:
            return 0.0, []
        uniq = np.unique(keys)
        if uniq.size != keys.size:
            raise ValueError("write requires unique keys")
        order = np.argsort(keys)
        keys, values = keys[order], values[order]

        total_t = 0.0
        new_ids: list[int] = []
        for start in range(0, keys.size, self.file_capacity):
            chunk_keys = keys[start : start + self.file_capacity]
            chunk_vals = values[start : start + self.file_capacity]
            fid = self._next_file_id
            self._next_file_id += 1
            f = ParameterFile(fid, chunk_keys.copy())
            self._store_payload(f, chunk_vals.copy())
            self._files[fid] = f
            self._total_bytes += self.file_bytes(f)
            total_t += self.device.write(self.file_bytes(f))
            # Repoint the mapping; bump old files' stale counters.
            old_fids, existed = self._mapping.set(
                chunk_keys, np.full(chunk_keys.size, fid, dtype=np.int64)
            )
            stale_fids, stale_counts = np.unique(
                old_fids[existed], return_counts=True
            )
            for old, count in zip(stale_fids, stale_counts):
                self._files[int(old)].stale_count += int(count)
            new_ids.append(fid)
        return total_t, new_ids

    def read(self, keys: np.ndarray) -> ReadResult:
        """Load values for ``keys``, reading whole files (I/O unit = file).

        Unmapped keys come back zero-filled with ``found=False``.  Reading
        a file costs its *entire* size regardless of how many of its rows
        were requested — the I/O-amplification trade-off of Appendix E.
        """
        keys = as_keys(keys)
        out = np.zeros((keys.size, self.value_dim), dtype=np.float32)
        found = np.zeros(keys.size, dtype=bool)
        if keys.size == 0:
            return ReadResult(out, found, 0.0, 0, 0)
        fids, _ = self._mapping.get(keys)
        total_t = 0.0
        files_read = 0
        bytes_read = 0
        cache_hits = 0
        # Group requested keys by file with one sort instead of scanning
        # the whole fid array once per touched file: each touched file is
        # resolved (and charged) exactly once per read call, no matter how
        # many of the batch's rows live in it.  All per-file boundaries
        # come out of the sorted fid array in one pass.
        order = fids.argsort(kind="stable")
        sorted_fids = fids[order]
        start = int(sorted_fids.searchsorted(0))  # skip unmapped (-1)
        if start == order.size:
            return ReadResult(out, found, 0.0, 0, 0)
        sf = sorted_fids[start:]
        cuts = np.flatnonzero(sf[1:] != sf[:-1]) + 1
        starts = np.concatenate(([0], cuts)) + start
        stops = np.append(cuts, sf.size) + start
        files = self._files
        cache = self.extent_cache
        device = self.device
        for s, e in zip(starts.tolist(), stops.tolist()):
            fid = int(sorted_fids[s])
            f = files[fid]
            sel = order[s:e]
            rows = f.keys.searchsorted(keys[sel])
            payload = cache.get(fid)
            if payload is None:
                if self.faults is not None:
                    # Armed cold read: transient read errors / torn
                    # payloads (caught by the existing digests) retry
                    # with backoff; exhaustion quarantines the file and
                    # re-materializes it from the newest checkpoint
                    # chain, or raises PayloadLostError if no durable
                    # copy exists.  All extra seconds land in the
                    # ledger's fault_retry line inside the arm.
                    total_t += self.faults.ssd_read(self, f)
                # Full payload read, charged to the device; admit it so
                # the next round's misses to this file go at warm rate.
                payload = self._payload(f)
                total_t += device.read(self.file_bytes(f))
                files_read += 1
                bytes_read += self.file_bytes(f)
                cache.put(fid, payload)
            else:
                # Cache hit: a host-DRAM copy, cheap but not free, so
                # the cache can default on without rewriting the cost
                # model's parity story.
                total_t += device.read_warm(self.file_bytes(f))
                cache_hits += 1
            out[sel] = payload[rows]
            found[sel] = True
        return ReadResult(out, found, total_t, files_read, bytes_read, cache_hits)

    # ------------------------------------------------------------------
    def live_rows(self, f: ParameterFile) -> tuple[np.ndarray, np.ndarray]:
        """(keys, values) of the non-stale rows of ``f``."""
        fids = self.mapping_of(f.keys)
        live = fids == f.file_id
        return f.keys[live], self._payload(f)[live]

    def erase(self, file_id: int) -> None:
        """Remove a file (compaction has rewritten its live rows).

        A disk-backed file whose ``.npy`` payload has vanished is *data
        loss*, not a no-op: silently proceeding would let compaction
        destroy the bookkeeping for rows whose only copy is already gone.
        The memory backend has no payload file and erases trivially.
        """
        f = self._files[file_id]
        if f.values is None and (f.path is None or not os.path.exists(f.path)):
            live = f.keys[self.mapping_of(f.keys) == file_id]
            raise PayloadLostError(
                f"parameter file {file_id} payload missing "
                f"({f.path!r}) — refusing to erase lost data",
                file_id=file_id,
                keys=live,
            )
        del self._files[file_id]
        self._total_bytes -= self.file_bytes(f)
        # Erase is the only operation that destroys a payload (compaction
        # erases its victims through here) — drop the cached copy so the
        # extent cache can never serve rows of a dead file.
        self.extent_cache.invalidate(file_id)
        if f.path is not None:
            os.remove(f.path)

    def export_state(self) -> dict[str, np.ndarray]:
        """Flat-array snapshot of files, payloads, mapping and counters.

        Variable-length per-file payloads are packed into one concatenated
        key/value pair plus an offsets array, so the snapshot can live in
        a single ``.npz`` shard.  The mapping is saved explicitly (rather
        than re-derived) so a restore can cross-check it against the stale
        counters via :meth:`check_invariants`.
        """
        fids = sorted(self._files)
        keys_parts = [self._files[fid].keys for fid in fids]
        vals_parts = [self._payload(self._files[fid]) for fid in fids]
        offsets = np.zeros(len(fids) + 1, dtype=np.int64)
        if fids:
            offsets[1:] = np.cumsum([k.size for k in keys_parts])
        map_keys, map_fids = self._mapping.items()
        order = np.argsort(map_keys)
        out = {
            "file_ids": np.asarray(fids, dtype=np.int64),
            "file_offsets": offsets,
            "file_keys": (
                np.concatenate(keys_parts)
                if fids
                else np.zeros(0, dtype=KEY_DTYPE)
            ),
            "file_values": (
                np.concatenate(vals_parts, axis=0)
                if fids
                else np.zeros((0, self.value_dim), dtype=np.float32)
            ),
            "file_stale": np.asarray(
                [self._files[fid].stale_count for fid in fids], dtype=np.int64
            ),
            "map_keys": map_keys[order].astype(KEY_DTYPE),
            "map_fids": map_fids[order].astype(np.int64),
            "next_file_id": np.int64(self._next_file_id),
            # Extent-cache residency (LRU-order file ids): hits go at the
            # warm rate instead of the device rate, so a restored run only
            # replays the original run's I/O schedule if the warm set
            # comes back too.
            "extent_cache_fids": np.asarray(
                self.extent_cache.resident_ids(), dtype=np.int64
            ),
        }
        self._export_extent_tuning(out)
        return out

    def _export_extent_tuning(self, out: dict[str, np.ndarray]) -> None:
        """Attach the adaptive extent cache's replay state (if any)."""
        if self.extent_cache.adaptive:
            for k, v in self.extent_cache.export_tuning().items():
                out[f"extent_tuning_{k}"] = v

    def export_delta(self, base: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Diff the store against a prior :meth:`export_state` snapshot.

        Files are immutable and ids monotone, so the diff is exact and
        cheap: every file with ``id >= base["next_file_id"]`` is new (its
        keys/values ship in the same packed layout as the full export);
        base files absent now were erased by compaction; surviving base
        files can only have changed their stale counter.  Mapping rows
        are shipped for exactly the keys appearing in new files — the
        only operation that repoints the mapping is :meth:`write`, which
        always lands keys in a new file, so that set covers every
        changed row.  The extent-cache residency ships in full (it is a
        handful of ids).
        """
        watermark = int(base["next_file_id"])
        new_fids = sorted(fid for fid in self._files if fid >= watermark)
        keys_parts = [self._files[fid].keys for fid in new_fids]
        vals_parts = [self._payload(self._files[fid]) for fid in new_fids]
        offsets = np.zeros(len(new_fids) + 1, dtype=np.int64)
        if new_fids:
            offsets[1:] = np.cumsum([k.size for k in keys_parts])
        base_fids = np.asarray(base["file_ids"], dtype=np.int64)
        base_stale = np.asarray(base["file_stale"], dtype=np.int64)
        erased = [
            int(fid) for fid in base_fids.tolist() if fid not in self._files
        ]
        stale_ids, stale_counts = [], []
        for fid, old_stale in zip(base_fids.tolist(), base_stale.tolist()):
            f = self._files.get(int(fid))
            if f is not None and f.stale_count != old_stale:
                stale_ids.append(int(fid))
                stale_counts.append(f.stale_count)
        if keys_parts:
            touched = np.unique(np.concatenate(keys_parts))
        else:
            touched = np.zeros(0, dtype=KEY_DTYPE)
        out = {
            "base_next_file_id": np.int64(watermark),
            "file_ids": np.asarray(new_fids, dtype=np.int64),
            "file_offsets": offsets,
            "file_keys": (
                np.concatenate(keys_parts)
                if new_fids
                else np.zeros(0, dtype=KEY_DTYPE)
            ),
            "file_values": (
                np.concatenate(vals_parts, axis=0)
                if new_fids
                else np.zeros((0, self.value_dim), dtype=np.float32)
            ),
            "file_stale": np.asarray(
                [self._files[fid].stale_count for fid in new_fids],
                dtype=np.int64,
            ),
            "erased_ids": np.asarray(erased, dtype=np.int64),
            "stale_ids": np.asarray(stale_ids, dtype=np.int64),
            "stale_counts": np.asarray(stale_counts, dtype=np.int64),
            "map_keys": touched,
            "map_fids": self.mapping_of(touched),
            "next_file_id": np.int64(self._next_file_id),
            "extent_cache_fids": np.asarray(
                self.extent_cache.resident_ids(), dtype=np.int64
            ),
        }
        self._export_extent_tuning(out)
        return out

    def load_delta(self, delta: dict[str, np.ndarray]) -> None:
        """Apply an :meth:`export_delta` diff on top of the base state.

        The store must currently hold exactly the base snapshot the
        delta was diffed against (``base_next_file_id`` is checked).
        Validation runs before any mutation; the apply order — add new
        files, repoint mapping, update stale counters, erase dead files
        — mirrors how the live store evolved, and ends in the same
        :meth:`check_invariants` sweep a full load runs.
        """
        if int(delta["base_next_file_id"]) != self._next_file_id:
            raise ValueError(
                f"delta was diffed against next_file_id="
                f"{int(delta['base_next_file_id'])}, store is at "
                f"{self._next_file_id}"
            )
        fids = np.asarray(delta["file_ids"], dtype=np.int64)
        offsets = np.asarray(delta["file_offsets"], dtype=np.int64)
        file_keys = as_keys(delta["file_keys"])
        file_values = np.asarray(delta["file_values"], dtype=np.float32)
        stale = np.asarray(delta["file_stale"], dtype=np.int64)
        erased = np.asarray(delta["erased_ids"], dtype=np.int64)
        stale_ids = np.asarray(delta["stale_ids"], dtype=np.int64)
        stale_counts = np.asarray(delta["stale_counts"], dtype=np.int64)
        map_keys_in = as_keys(delta["map_keys"])
        map_fids_in = np.asarray(delta["map_fids"], dtype=np.int64)
        next_file_id = int(delta["next_file_id"])
        if file_values.shape != (file_keys.size, self.value_dim):
            raise ValueError("file-store delta value shape mismatch")
        if offsets.shape != (fids.size + 1,) or (
            fids.size and int(offsets[-1]) != file_keys.size
        ):
            raise ValueError("file-store delta offsets mismatch")
        if fids.size and int(fids.min()) < self._next_file_id:
            raise ValueError("file-store delta contains pre-base file ids")
        if fids.size and next_file_id <= int(fids.max()):
            raise ValueError("file-store delta next_file_id is stale")
        for fid in erased.tolist():
            if int(fid) not in self._files:
                raise ValueError(
                    f"file-store delta erases unknown file {int(fid)}"
                )
        for fid in stale_ids.tolist():
            if int(fid) not in self._files:
                raise ValueError(
                    f"file-store delta updates stale counter of unknown "
                    f"file {int(fid)}"
                )
        for i, fid in enumerate(fids.tolist()):
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            f = ParameterFile(
                int(fid), file_keys[lo:hi].copy(), stale_count=int(stale[i])
            )
            self._store_payload(f, file_values[lo:hi].copy())
            self._files[int(fid)] = f
            self._total_bytes += self.file_bytes(f)
        if map_keys_in.size:
            self._mapping.set(map_keys_in, map_fids_in)
        for fid, count in zip(stale_ids.tolist(), stale_counts.tolist()):
            self._files[int(fid)].stale_count = int(count)
        for fid in erased.tolist():
            self.erase(int(fid))
        self._next_file_id = next_file_id
        self._rewarm_extent_cache(delta)
        self.check_invariants()

    def load_state(self, state: dict[str, np.ndarray]) -> None:
        """Rebuild the store from an :meth:`export_state` snapshot.

        Replaces any current contents; payloads are re-materialized
        through the store's own backend (disk-backed stores rewrite the
        ``.npy`` files under their directory).  The snapshot is fully
        validated — shapes, ``next_file_id``, mapping-vs-stale-counter
        consistency — *before* anything is erased, so a snapshot rejected
        as invalid leaves the store untouched.  (A hard I/O failure while
        re-materializing payloads can still leave a partial rebuild;
        checkpoint restores are immune because they load into a freshly
        constructed, empty store.)
        """
        fids = np.asarray(state["file_ids"], dtype=np.int64)
        offsets = np.asarray(state["file_offsets"], dtype=np.int64)
        file_keys = as_keys(state["file_keys"])
        file_values = np.asarray(state["file_values"], dtype=np.float32)
        stale = np.asarray(state["file_stale"], dtype=np.int64)
        map_keys_in = as_keys(state["map_keys"])
        map_fids_in = np.asarray(state["map_fids"], dtype=np.int64)
        next_file_id = int(state["next_file_id"])
        if file_values.shape != (file_keys.size, self.value_dim):
            raise ValueError("file-store snapshot value shape mismatch")
        if offsets.shape != (fids.size + 1,) or (
            fids.size and int(offsets[-1]) != file_keys.size
        ):
            raise ValueError("file-store snapshot offsets mismatch")
        if fids.size and next_file_id <= int(fids.max()):
            raise ValueError("file-store snapshot next_file_id is stale")
        if map_fids_in.shape != map_keys_in.shape or (
            np.unique(map_keys_in).size != map_keys_in.size
        ):
            raise ValueError("file-store snapshot mapping malformed")
        # The mapping must agree with the stale counters file by file
        # (the on-store check_invariants contract, applied to the arrays).
        mapped_fids, mapped_counts = np.unique(map_fids_in, return_counts=True)
        if not np.isin(mapped_fids, fids).all():
            raise ValueError("file-store snapshot maps keys to unknown files")
        live_of = dict(zip(mapped_fids.tolist(), mapped_counts.tolist()))
        for i, fid in enumerate(fids.tolist()):
            n_params = int(offsets[i + 1] - offsets[i])
            if live_of.get(fid, 0) != n_params - int(stale[i]):
                raise ValueError(
                    f"file-store snapshot stale counter of file {fid} "
                    "disagrees with its mapping"
                )
        for fid in list(self._files):
            self.erase(fid)
        self._mapping = SlotIndex(
            max(1024, int(state["map_keys"].size)),
            key_domain=self._key_domain,
        )
        for i, fid in enumerate(fids):
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            f = ParameterFile(
                int(fid), file_keys[lo:hi].copy(), stale_count=int(stale[i])
            )
            self._store_payload(f, file_values[lo:hi].copy())
            self._files[int(fid)] = f
            self._total_bytes += self.file_bytes(f)
        self._next_file_id = next_file_id
        if map_keys_in.size:
            self._mapping.set(map_keys_in, map_fids_in)
        self._rewarm_extent_cache(state)
        self.check_invariants()

    def _rewarm_extent_cache(self, state: dict[str, np.ndarray]) -> None:
        """Restore the warm set (and, if adaptive, the tuning state).

        The tuning state loads *first* so the capacity in force during
        the re-warm is the snapshot's — then :meth:`FileHandleCache.warm`
        admits only the newest ``max_files`` surviving ids, so a live
        capacity smaller than the snapshot's residency (a fixed-size
        restore into a smaller store, or an adaptive cache that shrank)
        can never over-warm nor spuriously count evictions.
        """
        if self.extent_cache.adaptive and "extent_tuning_capacity" in state:
            self.extent_cache.load_tuning(
                {
                    k[len("extent_tuning_") :]: v
                    for k, v in state.items()
                    if k.startswith("extent_tuning_")
                }
            )
        self.extent_cache.clear()
        fids = [
            int(fid)
            for fid in state.get("extent_cache_fids", np.zeros(0, np.int64))
            if int(fid) in self._files
        ]
        self.extent_cache.warm(
            fids, lambda fid: self._payload(self._files[fid])
        )

    def check_invariants(self) -> None:
        """Debug/test hook: mapping, stale counters, byte accounting."""
        recomputed = sum(self.file_bytes(f) for f in self._files.values())
        if recomputed != self._total_bytes:
            raise AssertionError(
                f"cached total_bytes {self._total_bytes} != recomputed "
                f"{recomputed}"
            )
        for fid, f in self._files.items():
            live = int(np.sum(self.mapping_of(f.keys) == fid))
            if live != f.n_live:
                raise AssertionError(
                    f"file {fid}: stale counter says {f.n_live} live, "
                    f"mapping says {live}"
                )
        keys, fids = self._mapping.items()
        for fid in np.unique(fids):
            if int(fid) not in self._files:
                bad = int(keys[fids == fid][0])
                raise AssertionError(f"key {bad} maps to erased file {int(fid)}")
