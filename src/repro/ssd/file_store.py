"""File-level parameter storage (paper Section 6, Appendix E).

Parameters are materialized in immutable *parameter files*; an in-memory
parameter→file mapping locates them.  Updates never touch old files —
updated values are chunked into **new** files (sequential writes), the
mapping is repointed, and superseded rows become *stale*.  A per-file stale
counter (maintained exactly as the paper describes: bumped when the mapping
is repointed away) lets the compactor pick merge victims without reading
file contents.

Two backends: ``memory`` (default — file payloads held as NumPy arrays) and
``disk`` (payloads written as ``.npy`` files in a directory, for tests that
want real I/O).  Timing always comes from the :class:`SSDDevice` model.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.hardware.ledger import CostLedger
from repro.hardware.specs import SSDSpec
from repro.hardware.ssd_device import SSDDevice
from repro.store.slot_index import SlotIndex
from repro.utils.keys import as_keys

__all__ = ["FileStore", "ParameterFile", "ReadResult"]


@dataclass
class ParameterFile:
    """One immutable on-SSD parameter file."""

    file_id: int
    keys: np.ndarray  # sorted unique keys stored in this file
    stale_count: int = 0
    #: memory backend: the payload rows, aligned with ``keys``.
    values: np.ndarray | None = None
    #: disk backend: path of the .npy payload.
    path: str | None = None

    @property
    def n_params(self) -> int:
        return int(self.keys.size)

    @property
    def n_live(self) -> int:
        return self.n_params - self.stale_count

    def stale_fraction(self) -> float:
        return self.stale_count / self.n_params if self.n_params else 1.0


@dataclass(frozen=True)
class ReadResult:
    """Outcome of a batched read."""

    values: np.ndarray
    found: np.ndarray
    seconds: float
    files_read: int
    bytes_read: int


class FileStore:
    """Append-only parameter-file store with key→file mapping."""

    def __init__(
        self,
        value_dim: int,
        file_capacity: int,
        *,
        ssd_spec: SSDSpec | None = None,
        directory: str | None = None,
        ledger: CostLedger | None = None,
    ) -> None:
        if value_dim <= 0:
            raise ValueError("value_dim must be positive")
        if file_capacity <= 0:
            raise ValueError("file_capacity must be positive")
        self.value_dim = value_dim
        self.file_capacity = file_capacity
        self.ledger = ledger if ledger is not None else CostLedger()
        self.device = SSDDevice(ssd_spec or SSDSpec(), self.ledger)
        self.directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        self._files: dict[int, ParameterFile] = {}
        #: vectorized key -> file_id mapping (batch-first store layer).
        self._mapping = SlotIndex(1024)
        self._next_file_id = 0

    # ------------------------------------------------------------------
    @property
    def n_files(self) -> int:
        return len(self._files)

    @property
    def n_live_params(self) -> int:
        return len(self._mapping)

    def file_bytes(self, f: ParameterFile) -> int:
        return f.n_params * (8 + 4 * self.value_dim)

    @property
    def total_bytes(self) -> int:
        """Disk footprint including stale rows."""
        return sum(self.file_bytes(f) for f in self._files.values())

    @property
    def live_bytes(self) -> int:
        return self.n_live_params * (8 + 4 * self.value_dim)

    def files(self) -> list[ParameterFile]:
        return list(self._files.values())

    def mapping_of(self, keys: np.ndarray) -> np.ndarray:
        """File id per key (-1 if unmapped), vectorized."""
        fids, _ = self._mapping.get(as_keys(keys))
        return fids

    # ------------------------------------------------------------------
    def _payload(self, f: ParameterFile) -> np.ndarray:
        if f.values is not None:
            return f.values
        assert f.path is not None
        return np.load(f.path)

    def _store_payload(self, f: ParameterFile, values: np.ndarray) -> None:
        if self.directory is None:
            f.values = values
        else:
            f.path = os.path.join(self.directory, f"params_{f.file_id:08d}.npy")
            np.save(f.path, values)

    # ------------------------------------------------------------------
    def write(self, keys: np.ndarray, values: np.ndarray) -> tuple[float, list[int]]:
        """Chunk (keys, values) into new files; returns (seconds, file ids).

        Keys must be unique.  Previously mapped keys leave a stale row
        behind in their old file (with its counter bumped); the mapping is
        repointed to the new file.  Writes are sequential, as in the paper.
        """
        keys = as_keys(keys)
        values = np.asarray(values, dtype=np.float32)
        if values.shape != (keys.size, self.value_dim):
            raise ValueError("values shape mismatch")
        if keys.size == 0:
            return 0.0, []
        uniq = np.unique(keys)
        if uniq.size != keys.size:
            raise ValueError("write requires unique keys")
        order = np.argsort(keys)
        keys, values = keys[order], values[order]

        total_t = 0.0
        new_ids: list[int] = []
        for start in range(0, keys.size, self.file_capacity):
            chunk_keys = keys[start : start + self.file_capacity]
            chunk_vals = values[start : start + self.file_capacity]
            fid = self._next_file_id
            self._next_file_id += 1
            f = ParameterFile(fid, chunk_keys.copy())
            self._store_payload(f, chunk_vals.copy())
            self._files[fid] = f
            total_t += self.device.write(self.file_bytes(f))
            # Repoint the mapping; bump old files' stale counters.
            old_fids, existed = self._mapping.set(
                chunk_keys, np.full(chunk_keys.size, fid, dtype=np.int64)
            )
            stale_fids, stale_counts = np.unique(
                old_fids[existed], return_counts=True
            )
            for old, count in zip(stale_fids, stale_counts):
                self._files[int(old)].stale_count += int(count)
            new_ids.append(fid)
        return total_t, new_ids

    def read(self, keys: np.ndarray) -> ReadResult:
        """Load values for ``keys``, reading whole files (I/O unit = file).

        Unmapped keys come back zero-filled with ``found=False``.  Reading
        a file costs its *entire* size regardless of how many of its rows
        were requested — the I/O-amplification trade-off of Appendix E.
        """
        keys = as_keys(keys)
        out = np.zeros((keys.size, self.value_dim), dtype=np.float32)
        found = np.zeros(keys.size, dtype=bool)
        if keys.size == 0:
            return ReadResult(out, found, 0.0, 0, 0)
        fids = self.mapping_of(keys)
        total_t = 0.0
        files_read = 0
        bytes_read = 0
        for fid in np.unique(fids[fids >= 0]):
            f = self._files[int(fid)]
            payload = self._payload(f)
            sel = np.flatnonzero(fids == fid)
            rows = np.searchsorted(f.keys, keys[sel])
            out[sel] = payload[rows]
            found[sel] = True
            total_t += self.device.read(self.file_bytes(f))
            files_read += 1
            bytes_read += self.file_bytes(f)
        return ReadResult(out, found, total_t, files_read, bytes_read)

    # ------------------------------------------------------------------
    def live_rows(self, f: ParameterFile) -> tuple[np.ndarray, np.ndarray]:
        """(keys, values) of the non-stale rows of ``f``."""
        fids = self.mapping_of(f.keys)
        live = fids == f.file_id
        return f.keys[live], self._payload(f)[live]

    def erase(self, file_id: int) -> None:
        """Remove a file (compaction has rewritten its live rows)."""
        f = self._files.pop(file_id)
        if f.path is not None and os.path.exists(f.path):
            os.remove(f.path)

    def check_invariants(self) -> None:
        """Debug/test hook: mapping and stale counters must agree."""
        for fid, f in self._files.items():
            live = int(np.sum(self.mapping_of(f.keys) == fid))
            if live != f.n_live:
                raise AssertionError(
                    f"file {fid}: stale counter says {f.n_live} live, "
                    f"mapping says {live}"
                )
        keys, fids = self._mapping.items()
        for fid in np.unique(fids):
            if int(fid) not in self._files:
                bad = int(keys[fids == fid][0])
                raise AssertionError(f"key {bad} maps to erased file {int(fid)}")
