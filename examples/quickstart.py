"""Quickstart: train a CTR model on a 2-node hierarchical parameter server.

Builds a scaled-down deployment (2 nodes x 2 GPUs, LRU+LFU cache, SSD
file store), streams synthetic click logs through Algorithm 1 for a few
global batches, and reports loss, cache behaviour, and test AUC — plus a
losslessness check against the single-store reference trainer.

Run:  python examples/quickstart.py
"""


from repro.bench.report import format_table
from repro.config import ClusterConfig, ModelSpec
from repro.core.cluster import HPSCluster
from repro.core.trainer import ReferenceTrainer


def main() -> None:
    # A laptop-scale model: 60k sparse features across 4 slots, 8 nonzeros
    # per example, dim-4 embeddings feeding a (16, 8) MLP tower.
    spec = ModelSpec(
        name="quickstart",
        nonzeros_per_example=8,
        n_sparse=60_000,
        n_dense=1_000,
        size_gb=0.01,
        mpi_nodes=10,
        embedding_dim=4,
        hidden_layers=(16, 8),
        n_slots=4,
    )
    config = ClusterConfig(
        n_nodes=2,
        gpus_per_node=2,
        minibatches_per_gpu=2,
        mem_capacity_params=4_000,     # small on purpose: exercises the SSD
        hbm_capacity_params=100_000,
        ssd_file_capacity=256,
        seed=0,
    )

    cluster = HPSCluster(spec, config, functional_batch_size=768)
    reference = ReferenceTrainer(spec, config, functional_batch_size=768)

    print("Training 8 global batches through the 3-layer hierarchy...\n")
    rows = []
    for _ in range(8):
        stats = cluster.train_round()
        ref_loss = reference.train_round()
        rows.append(
            (
                stats.round_index,
                stats.n_working_params,
                stats.mean_loss,
                ref_loss,
                stats.cache_hit_rate,
            )
        )
    print(
        format_table(
            ["round", "working params", "HPS loss", "reference loss", "cache hit"],
            rows,
        )
    )

    eval_batch = cluster.generator.batch(10_000, 4096)
    auc_hps = cluster.evaluate_auc(eval_batch)
    auc_ref = reference.evaluate_auc(eval_batch)
    print(f"\nTest AUC — hierarchical PS: {auc_hps:.4f}   reference: {auc_ref:.4f}")
    print(f"Relative AUC: {auc_hps / auc_ref:.6f} (paper requires within 0.1%)")
    assert abs(auc_hps / auc_ref - 1.0) < 1e-3

    node = cluster.nodes[0]
    print(
        f"\nNode 0 storage: cache={len(node.mem_ps.cache)} params, "
        f"SSD={node.ssd_ps.n_live_params} params in "
        f"{node.ssd_ps.store.n_files} files"
    )


if __name__ == "__main__":
    main()
