"""The Section-2 study: can hashing replace the 10 TB model?

Reproduces the OP+OSRP experiment (Tables 1–2): train sparse logistic
regression and an embedding DNN on raw binary features, then sweep the
hash width k for Hash+DNN and watch the AUC degrade — the result that
motivated building the hierarchical parameter server instead of
compressing the model.

Run:  python examples/hashing_study.py
"""

from repro.bench.harness import run_op_osrp_study
from repro.bench.report import format_table


def main() -> None:
    print("Training LR / DNN / Hash+DNN on synthetic sponsored-ads data...\n")
    rows = run_op_osrp_study(
        n_features=2**16,
        n_slots=8,
        nonzeros=32,
        n_train_batches=25,
        batch_size=1024,
        eval_size=8192,
        k_values=(2**14, 2**12, 2**10, 2**8),
        epochs=3,
        seed=0,
    )
    print(
        format_table(
            ["method", "#weights", "test AUC"],
            [(r["method"], r["n_weights"], r["auc"]) for r in rows],
            title="OP+OSRP on synthetic ads data (paper Tables 1-2 shape)",
        )
    )

    by = {r["method"]: r["auc"] for r in rows}
    gap = by["Baseline DNN"] - by["Baseline LR"]
    print(f"\nDNN beats LR by {gap:+.4f} AUC — the case for DNN CTR models.")
    hash_rows = [r for r in rows if r["k"] is not None]
    worst = min(r["auc"] for r in hash_rows)
    best = max(r["auc"] for r in hash_rows)
    print(
        f"Hashing costs {by['Baseline DNN'] - best:+.4f} AUC at the widest k "
        f"and {by['Baseline DNN'] - worst:+.4f} at the narrowest."
    )
    print(
        "\nPaper's conclusion: even a 0.1% AUC drop is unacceptable revenue "
        "loss for web-search ads, so the full model must be trained "
        "losslessly — hence the hierarchical GPU parameter server."
    )


if __name__ == "__main__":
    main()
