"""Checkpoint/restore and failure injection across the three-tier store.

Trains a 2-node deployment with batch-granular snapshots (manifest +
per-node shards, committed atomically), kills a node mid-run, recovers
through the paper's restore-and-replay protocol, and verifies that the
recovered cluster is bit-identical — embeddings, dense tower, and AUC —
to a run that never failed.

Run:  python examples/checkpoint_failover.py
"""

import tempfile

import numpy as np

from repro.bench.report import format_table
from repro.ckpt import FailureInjector
from repro.config import ClusterConfig, ModelSpec
from repro.core.cluster import HPSCluster

N_ROUNDS = 8
CHECKPOINT_EVERY = 2
KILL_NODE = 1
KILL_AFTER_ROUND = 4


def build() -> HPSCluster:
    spec = ModelSpec(
        name="failover",
        nonzeros_per_example=8,
        n_sparse=60_000,
        n_dense=1_000,
        size_gb=0.01,
        mpi_nodes=10,
        embedding_dim=4,
        hidden_layers=(16, 8),
        n_slots=4,
    )
    config = ClusterConfig(
        n_nodes=2,
        gpus_per_node=2,
        minibatches_per_gpu=2,
        mem_capacity_params=4_000,  # small on purpose: exercises the SSD
        hbm_capacity_params=100_000,
        ssd_file_capacity=256,
        seed=3,
    )
    return HPSCluster(spec, config, functional_batch_size=512)


def main() -> None:
    print(f"Baseline: {N_ROUNDS} rounds straight through, no failure...")
    baseline = build()
    baseline.train(N_ROUNDS)

    print(
        f"Failure run: snapshot every {CHECKPOINT_EVERY} rounds, "
        f"node {KILL_NODE} dies after round {KILL_AFTER_ROUND}.\n"
    )
    with tempfile.TemporaryDirectory() as tmp:
        injector = FailureInjector(tmp, checkpoint_every=CHECKPOINT_EVERY)
        recovered, report = injector.run(
            build(),
            N_ROUNDS,
            kill_node=KILL_NODE,
            kill_after_round=KILL_AFTER_ROUND,
        )

    print(
        format_table(
            ["snapshot @round", "simulated s", "bytes"],
            [
                (c.rounds_completed, f"{c.seconds:.6f}", c.nbytes)
                for c in report.checkpoints
            ],
        )
    )
    print(
        f"\nRecovery: restored round-{report.checkpoint_round} snapshot in "
        f"{report.restore_seconds:.6f}s, replayed {report.rounds_replayed} "
        f"lost round(s) in {report.replay_seconds:.6f}s "
        f"(total downtime {report.recovery_seconds:.6f}s)"
    )

    probe = baseline.generator.batch(10_000, 2048).unique_keys()
    sparse_ok = np.array_equal(
        baseline.lookup_embeddings(probe), recovered.lookup_embeddings(probe)
    )
    dense_ok = all(
        np.array_equal(a, b)
        for a, b in zip(
            baseline.nodes[0].model.dense_state(),
            recovered.nodes[0].model.dense_state(),
        )
    )
    eval_batch = baseline.generator.batch(20_000, 4096)
    auc_base = baseline.evaluate_auc(eval_batch)
    auc_rec = recovered.evaluate_auc(eval_batch)
    print(
        f"\nParity vs never-failed run — embeddings: {sparse_ok}, "
        f"dense tower: {dense_ok}, AUC: {auc_base:.6f} vs {auc_rec:.6f}"
    )
    assert sparse_ok and dense_ok and auc_base == auc_rec
    print("Recovered cluster is bit-identical to the run that never failed.")


if __name__ == "__main__":
    main()
