"""Inside the storage hierarchy: watch the cache warm up and the SSD-PS
compact itself.

Runs a single-node deployment whose MEM-PS cache is much smaller than the
key space, so parameters continuously spill to the SSD file store.  Shows
the Fig 4(c) cache warm-up curve and the Fig 5(a) compaction onset live,
with per-batch storage accounting.

Run:  python examples/storage_hierarchy_demo.py
"""

from repro.bench.harness import functional_model, small_cluster_config
from repro.bench.report import format_series
from repro.core.cluster import HPSCluster


def main() -> None:
    spec = functional_model()
    config = small_cluster_config(
        n_nodes=1,
        gpus_per_node=2,
        mem_capacity_params=2_600,
        cache_lru_fraction=0.6,
        compaction_threshold=1.4,
        seed=0,
    )
    cluster = HPSCluster(spec, config, functional_batch_size=512)
    node = cluster.nodes[0]

    print(
        f"Key space: {spec.n_sparse:,} | cache: "
        f"{config.mem_capacity_params:,} params | compaction threshold: "
        f"{config.compaction_threshold}x live size\n"
    )

    hits, ios, onset = [], [], None
    for i in range(70):
        stats = cluster.train_round()
        hits.append(stats.cache_hit_rate)
        ios.append(stats.ssd_io_seconds * 1e3)
        if stats.compactions and onset is None:
            onset = i
        if i % 10 == 9:
            store = node.ssd_ps.store
            ratio = store.total_bytes / max(1, store.live_bytes)
            print(
                f"batch {i + 1:>3}: hit={stats.cache_hit_rate:.2f}  "
                f"ssd_io={stats.ssd_io_seconds * 1e3:6.1f} ms  "
                f"files={store.n_files:>4}  disk/live={ratio:.2f}"
                + ("  <- compaction active" if stats.compactions else "")
            )

    print(
        "\n"
        + format_series(
            list(range(0, 70, 7)),
            hits[::7],
            x_name="#batch",
            y_name="cache hit rate",
            title="Fig 4(c) shape: cold start -> plateau",
        )
    )
    if onset is not None:
        print(
            f"\nCompaction first triggered at batch {onset} "
            "(paper observes batch ~54 on model E) — SSD I/O time hikes "
            "and fluctuates from there, the Fig 5(a) shape."
        )
    node.ssd_ps.check_invariants()
    print("SSD-PS invariants hold (mapping <-> stale counters consistent).")


if __name__ == "__main__":
    main()
