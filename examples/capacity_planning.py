"""Capacity planning at paper scale: would a hierarchical GPU PS pay off?

Uses the analytical timing models to price the paper's five production
models (Table 3: 300 GB – 10 TB) on a 4-node GPU deployment vs the
75–150-node MPI cluster, reproducing Table 4 and Figures 3(a)/3(c) —
the workflow an infrastructure team would run before buying hardware.

Run:  python examples/capacity_planning.py
"""

from repro.bench.analytical import AnalyticalHPS
from repro.bench.harness import run_fig3c_stage_times, run_table4_speedups
from repro.bench.report import ascii_bars, format_table
from repro.config import PAPER_MODELS


def main() -> None:
    print("=== Stage decomposition per 4M-example batch (Fig 3c) ===\n")
    rows = run_fig3c_stage_times()
    print(
        format_table(
            ["model", "read (s)", "pull/push (s)", "train (s)", "bottleneck"],
            [
                (
                    r["model"],
                    r["read_examples"],
                    r["pull_push"],
                    r["train_dnn"],
                    max(
                        ("read", r["read_examples"]),
                        ("pull/push", r["pull_push"]),
                        ("train", r["train_dnn"]),
                        key=lambda t: t[1],
                    )[0],
                )
                for r in rows
            ],
        )
    )
    print(
        "\nSmall models are HDFS-bound; from model C on, the MEM/SSD "
        "pull-push path dominates — exactly the paper's crossover.\n"
    )

    print("=== Speedup & price-performance vs the MPI cluster (Table 4) ===\n")
    rows = run_table4_speedups()
    print(
        format_table(
            ["model", "MPI nodes", "HPS-4 ex/s", "MPI ex/s", "speedup", "cost-norm"],
            [
                (
                    r["model"],
                    r["mpi_nodes"],
                    r["hps_throughput"],
                    r["mpi_throughput"],
                    r["speedup"],
                    r["cost_normalized_speedup"],
                )
                for r in rows
            ],
        )
    )
    print(
        "\n(cost-norm = speedup / 4 GPU nodes / 10, scaled by the MPI node "
        "count: 1 GPU node ~ 10 CPU nodes in hardware+maintenance cost)\n"
    )

    print("=== What if we only get 2 nodes? Scaling model E ===\n")
    throughputs = [
        AnalyticalHPS(PAPER_MODELS["E"], n_nodes=n).throughput()
        for n in (1, 2, 3, 4)
    ]
    print(
        ascii_bars(
            [f"{n} node(s)" for n in (1, 2, 3, 4)],
            throughputs,
            title="model E throughput (examples/s)",
        )
    )
    print(
        f"\n4-node speedup over 1 node: {throughputs[3] / throughputs[0]:.2f} "
        "(paper: 3.57 of the ideal 4)"
    )

    print("\n=== Cache-memory sensitivity (model E) ===\n")
    for frac in (0.1, 0.3, 0.6):
        model = AnalyticalHPS(PAPER_MODELS["E"])
        model.cache_memory_fraction = frac
        print(
            f"  cache = {frac:.0%} of node RAM -> hit rate "
            f"{model.cache_hit_rate():.2f}, throughput "
            f"{model.throughput():,.0f} ex/s"
        )


if __name__ == "__main__":
    main()
